package service

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// latencySamples bounds the reservoir used for the latency quantiles: a
// ring of the most recent solves, cheap to record and good enough for
// operational p50/p99.
const latencySamples = 1024

// Metrics aggregates service counters. Safe for concurrent use.
type Metrics struct {
	mu           sync.Mutex
	started      time.Time
	solves       map[string]uint64 // per engine
	nodes        map[string]uint64 // per engine: B&B nodes explored (LP solved)
	pruned       map[string]uint64 // per engine: nodes fathomed combinatorially
	lpSkipped    map[string]uint64 // per engine: nodes discarded without an LP solve
	cutsAdded    map[string]uint64 // per engine: cutting planes added by separation
	sepRounds    map[string]uint64 // per engine: node LP re-solves from cut rounds
	conflictCuts map[string]uint64 // per engine: no-goods learned from infeasible subtrees
	cgCuts       map[string]uint64 // per engine: Chvátal–Gomory cardinality cuts in play
	dualFathoms  map[string]uint64 // per engine: bin-packing dual-bound fathoms
	lpRefactor   map[string]uint64 // per engine: LP basis reinversions
	lpFlips      map[string]uint64 // per engine: dual long-step bound flips
	errors       uint64
	cancelled    uint64
	ring         [latencySamples]time.Duration
	ringLen      int
	ringPos      int
}

// NewMetrics returns an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{
		started:      time.Now(),
		solves:       map[string]uint64{},
		nodes:        map[string]uint64{},
		pruned:       map[string]uint64{},
		lpSkipped:    map[string]uint64{},
		cutsAdded:    map[string]uint64{},
		sepRounds:    map[string]uint64{},
		conflictCuts: map[string]uint64{},
		cgCuts:       map[string]uint64{},
		dualFathoms:  map[string]uint64{},
		lpRefactor:   map[string]uint64{},
		lpFlips:      map[string]uint64{},
	}
}

// RecordSolve notes one completed solve request and its end-to-end latency.
func (m *Metrics) RecordSolve(engine string, d time.Duration, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.solves[engine]++
	if err != nil {
		m.errors++
		return
	}
	m.ring[m.ringPos] = d
	m.ringPos = (m.ringPos + 1) % latencySamples
	if m.ringLen < latencySamples {
		m.ringLen++
	}
}

// SearchCounters is one fresh solve's branch-and-bound activity: nodes
// whose LP relaxation was solved, nodes fathomed by the presolve's
// combinatorial bound, nodes discarded without any LP solve, the
// cutting-plane engine's cuts/rounds, the infeasibility-proof engine's
// conflict cuts, CG cardinality cuts, and bin-packing dual-bound fathoms,
// and the simplex kernel's basis reinversions and dual long-step bound
// flips (the two counters that say whether the Forrest–Tomlin update path
// and the bound-flipping ratio test are carrying the warm-start load).
type SearchCounters struct {
	Nodes               int
	PrunedCombinatorial int
	LPSolvesSkipped     int
	CutsAdded           int
	SeparationRounds    int
	ConflictCuts        int
	CGCuts              int
	DualBoundFathoms    int
	LPRefactorizations  int
	LPBoundFlips        int
}

// RecordSearch folds one fresh solve's search counters into the per-engine
// aggregates. Cache hits and shared solves are not recorded (their search
// ran at most once, elsewhere).
func (m *Metrics) RecordSearch(engine string, c SearchCounters) {
	m.mu.Lock()
	m.nodes[engine] += uint64(c.Nodes)
	m.pruned[engine] += uint64(c.PrunedCombinatorial)
	m.lpSkipped[engine] += uint64(c.LPSolvesSkipped)
	m.cutsAdded[engine] += uint64(c.CutsAdded)
	m.sepRounds[engine] += uint64(c.SeparationRounds)
	m.conflictCuts[engine] += uint64(c.ConflictCuts)
	m.cgCuts[engine] += uint64(c.CGCuts)
	m.dualFathoms[engine] += uint64(c.DualBoundFathoms)
	m.lpRefactor[engine] += uint64(c.LPRefactorizations)
	m.lpFlips[engine] += uint64(c.LPBoundFlips)
	m.mu.Unlock()
}

// RecordCancelled notes a job cancelled by the client.
func (m *Metrics) RecordCancelled() {
	m.mu.Lock()
	m.cancelled++
	m.mu.Unlock()
}

// Snapshot is a point-in-time metrics view used by /healthz and /metrics.
type Snapshot struct {
	UptimeMS     int64             `json:"uptime_ms"`
	Solves       map[string]uint64 `json:"solves"`
	Nodes        map[string]uint64 `json:"bb_nodes,omitempty"`
	Pruned       map[string]uint64 `json:"bb_pruned_combinatorial,omitempty"`
	LPSkipped    map[string]uint64 `json:"lp_solves_skipped,omitempty"`
	CutsAdded    map[string]uint64 `json:"cuts_added,omitempty"`
	SepRounds    map[string]uint64 `json:"separation_rounds,omitempty"`
	ConflictCuts map[string]uint64 `json:"conflict_cuts,omitempty"`
	CGCuts       map[string]uint64 `json:"cg_cuts,omitempty"`
	DualFathoms  map[string]uint64 `json:"dual_bound_fathoms,omitempty"`
	LPRefactor   map[string]uint64 `json:"lp_refactorizations,omitempty"`
	LPFlips      map[string]uint64 `json:"lp_bound_flips,omitempty"`
	Errors       uint64            `json:"errors"`
	Cancelled    uint64            `json:"cancelled"`
	P50MS        float64           `json:"latency_p50_ms"`
	P99MS        float64           `json:"latency_p99_ms"`
}

// Snapshot captures current counters and latency quantiles.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		UptimeMS:     time.Since(m.started).Milliseconds(),
		Solves:       make(map[string]uint64, len(m.solves)),
		Nodes:        make(map[string]uint64, len(m.nodes)),
		Pruned:       make(map[string]uint64, len(m.pruned)),
		LPSkipped:    make(map[string]uint64, len(m.lpSkipped)),
		CutsAdded:    make(map[string]uint64, len(m.cutsAdded)),
		SepRounds:    make(map[string]uint64, len(m.sepRounds)),
		ConflictCuts: make(map[string]uint64, len(m.conflictCuts)),
		CGCuts:       make(map[string]uint64, len(m.cgCuts)),
		DualFathoms:  make(map[string]uint64, len(m.dualFathoms)),
		LPRefactor:   make(map[string]uint64, len(m.lpRefactor)),
		LPFlips:      make(map[string]uint64, len(m.lpFlips)),
		Errors:       m.errors,
		Cancelled:    m.cancelled,
	}
	for k, v := range m.solves {
		s.Solves[k] = v
	}
	for k, v := range m.nodes {
		s.Nodes[k] = v
	}
	for k, v := range m.pruned {
		s.Pruned[k] = v
	}
	for k, v := range m.lpSkipped {
		s.LPSkipped[k] = v
	}
	for k, v := range m.cutsAdded {
		s.CutsAdded[k] = v
	}
	for k, v := range m.sepRounds {
		s.SepRounds[k] = v
	}
	for k, v := range m.conflictCuts {
		s.ConflictCuts[k] = v
	}
	for k, v := range m.cgCuts {
		s.CGCuts[k] = v
	}
	for k, v := range m.dualFathoms {
		s.DualFathoms[k] = v
	}
	for k, v := range m.lpRefactor {
		s.LPRefactor[k] = v
	}
	for k, v := range m.lpFlips {
		s.LPFlips[k] = v
	}
	if m.ringLen > 0 {
		sorted := make([]time.Duration, m.ringLen)
		copy(sorted, m.ring[:m.ringLen])
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		q := func(p float64) float64 {
			i := int(p * float64(len(sorted)-1))
			return float64(sorted[i]) / 1e6
		}
		s.P50MS = q(0.50)
		s.P99MS = q(0.99)
	}
	return s
}

// Exposition renders the metrics in Prometheus text format, folding in the
// cache stats and scheduler gauges supplied by the server.
func (m *Metrics) Exposition(cache CacheStats, queueDepth, running int) string {
	s := m.Snapshot()
	var b strings.Builder
	emit := func(name string, v interface{}) {
		fmt.Fprintf(&b, "sparcsd_%s %v\n", name, v)
	}
	for _, eng := range sortedKeys(s.Solves) {
		fmt.Fprintf(&b, "sparcsd_solve_total{engine=%q} %d\n", eng, s.Solves[eng])
	}
	// Per-engine search counters: how much branch-and-bound work fresh
	// solves did, and how much of it the presolve pruned before the simplex
	// ran. A healthy prune-first deployment shows pruned+skipped growing
	// much faster than nodes.
	for _, eng := range sortedKeys(s.Nodes) {
		fmt.Fprintf(&b, "sparcsd_bb_nodes_total{engine=%q} %d\n", eng, s.Nodes[eng])
	}
	for _, eng := range sortedKeys(s.Pruned) {
		fmt.Fprintf(&b, "sparcsd_bb_pruned_combinatorial_total{engine=%q} %d\n", eng, s.Pruned[eng])
	}
	for _, eng := range sortedKeys(s.LPSkipped) {
		fmt.Fprintf(&b, "sparcsd_lp_solves_skipped_total{engine=%q} %d\n", eng, s.LPSkipped[eng])
	}
	// Cutting-plane engine: cuts the separators admitted and the node LP
	// re-solves they triggered (branch-and-cut grows the model instead of
	// the tree; rising cuts with flat nodes is the engine working).
	for _, eng := range sortedKeys(s.CutsAdded) {
		fmt.Fprintf(&b, "sparcsd_cuts_added_total{engine=%q} %d\n", eng, s.CutsAdded[eng])
	}
	for _, eng := range sortedKeys(s.SepRounds) {
		fmt.Fprintf(&b, "sparcsd_separation_rounds_total{engine=%q} %d\n", eng, s.SepRounds[eng])
	}
	// Infeasibility-proof engine: no-goods learned from fathomed-infeasible
	// subtrees, Chvátal–Gomory cardinality cuts in play, and bin-packing
	// dual-bound fathoms (N probes and B&B nodes killed LP-free). Rising
	// fathoms with flat nodes is the proof engine doing the pruning.
	for _, eng := range sortedKeys(s.ConflictCuts) {
		fmt.Fprintf(&b, "sparcsd_conflict_cuts_total{engine=%q} %d\n", eng, s.ConflictCuts[eng])
	}
	for _, eng := range sortedKeys(s.CGCuts) {
		fmt.Fprintf(&b, "sparcsd_cg_cuts_total{engine=%q} %d\n", eng, s.CGCuts[eng])
	}
	for _, eng := range sortedKeys(s.DualFathoms) {
		fmt.Fprintf(&b, "sparcsd_dual_bound_fathoms_total{engine=%q} %d\n", eng, s.DualFathoms[eng])
	}
	// Simplex kernel: basis reinversions (the Forrest–Tomlin update path
	// exists to keep these rare) and dual long-step bound flips
	// (infeasibility absorbed without a pivot). Rising reinversions per
	// solve means the update file is being thrown away too early; falling
	// flips means the ratio test stopped taking long steps.
	for _, eng := range sortedKeys(s.LPRefactor) {
		fmt.Fprintf(&b, "sparcsd_lp_refactorizations_total{engine=%q} %d\n", eng, s.LPRefactor[eng])
	}
	for _, eng := range sortedKeys(s.LPFlips) {
		fmt.Fprintf(&b, "sparcsd_lp_bound_flips_total{engine=%q} %d\n", eng, s.LPFlips[eng])
	}
	emit("solve_errors_total", s.Errors)
	emit("jobs_cancelled_total", s.Cancelled)
	emit("cache_hits_total", cache.Hits)
	emit("cache_misses_total", cache.Misses)
	emit("cache_inflight_shared_total", cache.Shared)
	emit("cache_evictions_total", cache.Evictions)
	emit("cache_remap_fallbacks_total", cache.RemapFallbacks)
	emit("cache_entries", cache.Entries)
	fmt.Fprintf(&b, "sparcsd_cache_hit_rate %.4f\n", cache.HitRate())
	emit("queue_depth", queueDepth)
	fmt.Fprintf(&b, "sparcsd_jobs{state=%q} %d\n", "running", running)
	fmt.Fprintf(&b, "sparcsd_jobs{state=%q} %d\n", "queued", queueDepth)
	fmt.Fprintf(&b, "sparcsd_solve_latency_seconds{quantile=\"0.5\"} %.6f\n", s.P50MS/1e3)
	fmt.Fprintf(&b, "sparcsd_solve_latency_seconds{quantile=\"0.99\"} %.6f\n", s.P99MS/1e3)
	emit("uptime_seconds", s.UptimeMS/1000)
	return b.String()
}

func sortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/tempart"
)

// Outcome labels for terminal solve states: every request that reaches the
// solve path lands in exactly one, and every one is latency-recorded (an
// errored or cancelled solve still occupied a worker for its duration).
const (
	OutcomeOK        = "ok"
	OutcomeError     = "error"
	OutcomeCancelled = "cancelled"
	OutcomeTimeout   = "timeout"
)

// outcomeOf classifies a terminal solve error. A deadline expiry is not a
// cancellation: the client is still waiting and (with a deadline_ms
// request) is about to receive an anytime or fallback result, so it gets
// its own outcome label in the latency histograms.
func outcomeOf(err error) string {
	switch {
	case err == nil:
		return OutcomeOK
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, tempart.ErrDeadline):
		return OutcomeTimeout
	case errors.Is(err, context.Canceled):
		return OutcomeCancelled
	default:
		return OutcomeError
	}
}

// histKey indexes the per-(engine, outcome) latency histograms.
type histKey struct {
	engine  string
	outcome string
}

// Metrics aggregates service counters. Safe for concurrent use.
type Metrics struct {
	mu           sync.Mutex
	started      time.Time
	solves       map[string]uint64 // per engine
	nodes        map[string]uint64 // per engine: B&B nodes explored (LP solved)
	pruned       map[string]uint64 // per engine: nodes fathomed combinatorially
	lpSkipped    map[string]uint64 // per engine: nodes discarded without an LP solve
	cutsAdded    map[string]uint64 // per engine: cutting planes added by separation
	sepRounds    map[string]uint64 // per engine: node LP re-solves from cut rounds
	conflictCuts map[string]uint64 // per engine: no-goods learned from infeasible subtrees
	cgCuts       map[string]uint64 // per engine: Chvátal–Gomory cardinality cuts in play
	dualFathoms  map[string]uint64 // per engine: bin-packing dual-bound fathoms
	lpRefactor   map[string]uint64 // per engine: LP basis reinversions
	lpFlips      map[string]uint64 // per engine: dual long-step bound flips
	lpSparseFT   map[string]uint64 // per engine: hyper-sparse FTRANs completed
	lpSparseBT   map[string]uint64 // per engine: hyper-sparse BTRANs completed
	lpDenseFalls map[string]uint64 // per engine: basis solves past the density gate
	columnsGen   map[string]uint64 // per engine: branch-and-price columns generated
	priceRounds  map[string]uint64 // per engine: pricing-problem invocations
	errors       uint64
	cancelled    uint64
	timeouts     uint64 // solves stopped by a deadline (anytime or not)
	anytime      uint64 // timed-out solves that still served an incumbent
	fallbacks    uint64 // timed-out solves served by the greedy fallback
	shed         uint64 // queued jobs dropped because their deadline expired
	workerPanics uint64 // solver panics recovered without losing the daemon
	// hist holds the per-(engine, outcome) fixed-bucket latency
	// histograms that replaced the PR 2 sample ring: every terminal
	// outcome is observed (the ring recorded successes only).
	hist map[histKey]*obs.Histogram
	// phaseNS accumulates engine → phase → cumulative span time from
	// fresh solves' traces.
	phaseNS map[string]map[string]int64
}

// NewMetrics returns an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{
		started:      time.Now(),
		solves:       map[string]uint64{},
		nodes:        map[string]uint64{},
		pruned:       map[string]uint64{},
		lpSkipped:    map[string]uint64{},
		cutsAdded:    map[string]uint64{},
		sepRounds:    map[string]uint64{},
		conflictCuts: map[string]uint64{},
		cgCuts:       map[string]uint64{},
		dualFathoms:  map[string]uint64{},
		lpRefactor:   map[string]uint64{},
		lpFlips:      map[string]uint64{},
		lpSparseFT:   map[string]uint64{},
		lpSparseBT:   map[string]uint64{},
		lpDenseFalls: map[string]uint64{},
		columnsGen:   map[string]uint64{},
		priceRounds:  map[string]uint64{},
		hist:         map[histKey]*obs.Histogram{},
		phaseNS:      map[string]map[string]int64{},
	}
}

// RecordSolve notes one completed solve request and its end-to-end
// latency. All terminal outcomes are recorded — success, error, and
// cancellation each observe the latency histogram under their outcome
// label, so slow failures are no longer invisible in latency.
func (m *Metrics) RecordSolve(engine string, d time.Duration, err error) {
	outcome := outcomeOf(err)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.solves[engine]++
	switch outcome {
	case OutcomeError:
		m.errors++
	case OutcomeCancelled:
		m.cancelled++
	case OutcomeTimeout:
		m.timeouts++
	}
	k := histKey{engine, outcome}
	h := m.hist[k]
	if h == nil {
		h = obs.NewHistogram(nil)
		m.hist[k] = h
	}
	h.Observe(d.Seconds())
}

// RecordPhases folds one solve's trace into the per-engine cumulative
// phase-time counters. Nil traces (cache hits, untraced paths) no-op.
func (m *Metrics) RecordPhases(engine string, tr *obs.Trace) {
	totals := tr.PhaseTotals()
	if len(totals) == 0 {
		return
	}
	m.mu.Lock()
	p := m.phaseNS[engine]
	if p == nil {
		p = make(map[string]int64, len(totals))
		m.phaseNS[engine] = p
	}
	for phase, ns := range totals {
		p[phase] += ns
	}
	m.mu.Unlock()
}

// SearchCounters is one fresh solve's branch-and-bound activity: nodes
// whose LP relaxation was solved, nodes fathomed by the presolve's
// combinatorial bound, nodes discarded without any LP solve, the
// cutting-plane engine's cuts/rounds, the infeasibility-proof engine's
// conflict cuts, CG cardinality cuts, and bin-packing dual-bound fathoms,
// and the simplex kernel's basis reinversions and dual long-step bound
// flips (the two counters that say whether the Forrest–Tomlin update path
// and the bound-flipping ratio test are carrying the warm-start load), and
// the hyper-sparse triangular-solve counters (FTRANs/BTRANs completed on
// the symbolic-reachability path versus solves past the density gate that
// fell back to the dense O(m) loops).
type SearchCounters struct {
	Nodes               int
	PrunedCombinatorial int
	LPSolvesSkipped     int
	CutsAdded           int
	SeparationRounds    int
	ConflictCuts        int
	CGCuts              int
	DualBoundFathoms    int
	LPRefactorizations  int
	LPBoundFlips        int
	LPSparseFTRANs      int
	LPSparseBTRANs      int
	LPDenseFallbacks    int
	// Branch-and-price column-generation effort (zero under the row
	// formulation): master columns appended beyond the artificials and
	// pricing-problem invocations.
	ColumnsGenerated int
	PricingRounds    int
}

// RecordSearch folds one fresh solve's search counters into the per-engine
// aggregates. Cache hits and shared solves are not recorded (their search
// ran at most once, elsewhere).
func (m *Metrics) RecordSearch(engine string, c SearchCounters) {
	m.mu.Lock()
	m.nodes[engine] += uint64(c.Nodes)
	m.pruned[engine] += uint64(c.PrunedCombinatorial)
	m.lpSkipped[engine] += uint64(c.LPSolvesSkipped)
	m.cutsAdded[engine] += uint64(c.CutsAdded)
	m.sepRounds[engine] += uint64(c.SeparationRounds)
	m.conflictCuts[engine] += uint64(c.ConflictCuts)
	m.cgCuts[engine] += uint64(c.CGCuts)
	m.dualFathoms[engine] += uint64(c.DualBoundFathoms)
	m.lpRefactor[engine] += uint64(c.LPRefactorizations)
	m.lpFlips[engine] += uint64(c.LPBoundFlips)
	m.lpSparseFT[engine] += uint64(c.LPSparseFTRANs)
	m.lpSparseBT[engine] += uint64(c.LPSparseBTRANs)
	m.lpDenseFalls[engine] += uint64(c.LPDenseFallbacks)
	m.columnsGen[engine] += uint64(c.ColumnsGenerated)
	m.priceRounds[engine] += uint64(c.PricingRounds)
	m.mu.Unlock()
}

// RecordCancelled notes a job cancelled through the jobs API (distinct
// from the latency histograms' cancelled outcome, which counts solves
// whose context died for any reason).
func (m *Metrics) RecordCancelled() {
	m.mu.Lock()
	m.cancelled++
	m.mu.Unlock()
}

// RecordAnytime notes a timed-out solve that still returned its best
// incumbent (degradation ladder rung 2: optimal → anytime incumbent).
func (m *Metrics) RecordAnytime() {
	m.mu.Lock()
	m.anytime++
	m.mu.Unlock()
}

// RecordFallback notes a timed-out solve with no incumbent that was served
// by the greedy list backend instead (ladder rung 3).
func (m *Metrics) RecordFallback() {
	m.mu.Lock()
	m.fallbacks++
	m.mu.Unlock()
}

// RecordShed notes a queued job dropped without running because its
// deadline had already expired (ladder rung 4: self-protection).
func (m *Metrics) RecordShed() {
	m.mu.Lock()
	m.shed++
	m.mu.Unlock()
}

// RecordWorkerPanic notes a solver panic that was recovered — the job
// failed, the daemon did not.
func (m *Metrics) RecordWorkerPanic() {
	m.mu.Lock()
	m.workerPanics++
	m.mu.Unlock()
}

// Snapshot is a point-in-time metrics view used by /healthz and /metrics.
type Snapshot struct {
	UptimeMS     int64             `json:"uptime_ms"`
	Solves       map[string]uint64 `json:"solves"`
	Nodes        map[string]uint64 `json:"bb_nodes,omitempty"`
	Pruned       map[string]uint64 `json:"bb_pruned_combinatorial,omitempty"`
	LPSkipped    map[string]uint64 `json:"lp_solves_skipped,omitempty"`
	CutsAdded    map[string]uint64 `json:"cuts_added,omitempty"`
	SepRounds    map[string]uint64 `json:"separation_rounds,omitempty"`
	ConflictCuts map[string]uint64 `json:"conflict_cuts,omitempty"`
	CGCuts       map[string]uint64 `json:"cg_cuts,omitempty"`
	DualFathoms  map[string]uint64 `json:"dual_bound_fathoms,omitempty"`
	LPRefactor   map[string]uint64 `json:"lp_refactorizations,omitempty"`
	LPFlips      map[string]uint64 `json:"lp_bound_flips,omitempty"`
	LPSparseFT   map[string]uint64 `json:"lp_sparse_ftrans,omitempty"`
	LPSparseBT   map[string]uint64 `json:"lp_sparse_btrans,omitempty"`
	LPDenseFalls map[string]uint64 `json:"lp_dense_fallbacks,omitempty"`
	ColumnsGen   map[string]uint64 `json:"columns_generated,omitempty"`
	PriceRounds  map[string]uint64 `json:"pricing_rounds,omitempty"`
	Errors       uint64            `json:"errors"`
	Cancelled    uint64            `json:"cancelled"`
	Timeouts     uint64            `json:"timeouts"`
	Anytime      uint64            `json:"anytime_solves"`
	Fallbacks    uint64            `json:"fallback_solves"`
	Shed         uint64            `json:"jobs_shed"`
	WorkerPanics uint64            `json:"worker_panics"`
	P50MS        float64           `json:"latency_p50_ms"`
	P99MS        float64           `json:"latency_p99_ms"`
}

// Snapshot captures current counters and latency quantiles (interpolated
// from the merged histograms, across every engine and outcome).
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		UptimeMS:     time.Since(m.started).Milliseconds(),
		Solves:       copyCounters(m.solves),
		Nodes:        copyCounters(m.nodes),
		Pruned:       copyCounters(m.pruned),
		LPSkipped:    copyCounters(m.lpSkipped),
		CutsAdded:    copyCounters(m.cutsAdded),
		SepRounds:    copyCounters(m.sepRounds),
		ConflictCuts: copyCounters(m.conflictCuts),
		CGCuts:       copyCounters(m.cgCuts),
		DualFathoms:  copyCounters(m.dualFathoms),
		LPRefactor:   copyCounters(m.lpRefactor),
		LPFlips:      copyCounters(m.lpFlips),
		LPSparseFT:   copyCounters(m.lpSparseFT),
		LPSparseBT:   copyCounters(m.lpSparseBT),
		LPDenseFalls: copyCounters(m.lpDenseFalls),
		ColumnsGen:   copyCounters(m.columnsGen),
		PriceRounds:  copyCounters(m.priceRounds),
		Errors:       m.errors,
		Cancelled:    m.cancelled,
		Timeouts:     m.timeouts,
		Anytime:      m.anytime,
		Fallbacks:    m.fallbacks,
		Shed:         m.shed,
		WorkerPanics: m.workerPanics,
	}
	if merged := m.mergedHistLocked(); merged.Count() > 0 {
		s.P50MS = merged.Quantile(0.50) * 1e3
		s.P99MS = merged.Quantile(0.99) * 1e3
	}
	return s
}

// mergedHistLocked folds every (engine, outcome) histogram into one for
// the service-wide quantile summary. Caller holds m.mu.
func (m *Metrics) mergedHistLocked() *obs.Histogram {
	merged := obs.NewHistogram(nil)
	for _, h := range m.hist {
		merged.Merge(h)
	}
	return merged
}

func copyCounters(src map[string]uint64) map[string]uint64 {
	dst := make(map[string]uint64, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// Exposition renders the metrics in Prometheus text format (promlint-clean:
// every family carries # HELP and # TYPE), folding in the cache stats and
// scheduler gauges supplied by the server.
func (m *Metrics) Exposition(cache CacheStats, queueDepth, running int) string {
	s := m.Snapshot()
	m.mu.Lock()
	type histLine struct {
		key  histKey
		hist *obs.Histogram
	}
	hists := make([]histLine, 0, len(m.hist))
	for k, h := range m.hist {
		hists = append(hists, histLine{k, h})
	}
	merged := m.mergedHistLocked()
	type phaseLine struct {
		engine, phase string
		ns            int64
	}
	var phases []phaseLine
	for engine, p := range m.phaseNS {
		for phase, ns := range p {
			phases = append(phases, phaseLine{engine, phase, ns})
		}
	}
	m.mu.Unlock()
	sort.Slice(hists, func(a, b int) bool {
		if hists[a].key.engine != hists[b].key.engine {
			return hists[a].key.engine < hists[b].key.engine
		}
		return hists[a].key.outcome < hists[b].key.outcome
	})
	sort.Slice(phases, func(a, b int) bool {
		if phases[a].engine != phases[b].engine {
			return phases[a].engine < phases[b].engine
		}
		return phases[a].phase < phases[b].phase
	})

	var b strings.Builder
	head := func(name, typ, help string) {
		fmt.Fprintf(&b, "# HELP sparcsd_%s %s\n# TYPE sparcsd_%s %s\n", name, help, name, typ)
	}
	engineFamily := func(name, help string, vals map[string]uint64) {
		if len(vals) == 0 {
			return
		}
		head(name, "counter", help)
		for _, eng := range sortedKeys(vals) {
			fmt.Fprintf(&b, "sparcsd_%s{engine=%q} %d\n", name, eng, vals[eng])
		}
	}
	scalar := func(name, typ, help string, v any) {
		head(name, typ, help)
		fmt.Fprintf(&b, "sparcsd_%s %v\n", name, v)
	}

	engineFamily("solve_total", "Completed solve requests per engine.", s.Solves)
	// Per-engine search counters: how much branch-and-bound work fresh
	// solves did, and how much of it the presolve pruned before the simplex
	// ran. A healthy prune-first deployment shows pruned+skipped growing
	// much faster than nodes.
	engineFamily("bb_nodes_total", "Branch-and-bound nodes whose LP relaxation was solved.", s.Nodes)
	engineFamily("bb_pruned_combinatorial_total", "Nodes fathomed by the combinatorial presolve bound.", s.Pruned)
	engineFamily("lp_solves_skipped_total", "Nodes discarded without an LP solve.", s.LPSkipped)
	// Cutting-plane engine: cuts the separators admitted and the node LP
	// re-solves they triggered (branch-and-cut grows the model instead of
	// the tree; rising cuts with flat nodes is the engine working).
	engineFamily("cuts_added_total", "Cutting planes admitted by separation.", s.CutsAdded)
	engineFamily("separation_rounds_total", "Node LP re-solves triggered by cut rounds.", s.SepRounds)
	// Infeasibility-proof engine: no-goods learned from fathomed-infeasible
	// subtrees, Chvátal–Gomory cardinality cuts in play, and bin-packing
	// dual-bound fathoms (N probes and B&B nodes killed LP-free). Rising
	// fathoms with flat nodes is the proof engine doing the pruning.
	engineFamily("conflict_cuts_total", "No-good cuts learned from infeasible subtrees.", s.ConflictCuts)
	engineFamily("cg_cuts_total", "Chvatal-Gomory cardinality cuts in play.", s.CGCuts)
	engineFamily("dual_bound_fathoms_total", "Bin-packing dual-bound fathoms (LP-free).", s.DualFathoms)
	// Simplex kernel: basis reinversions (the Forrest–Tomlin update path
	// exists to keep these rare) and dual long-step bound flips
	// (infeasibility absorbed without a pivot).
	engineFamily("lp_refactorizations_total", "LP basis reinversions.", s.LPRefactor)
	engineFamily("lp_bound_flips_total", "Dual long-step bound flips.", s.LPFlips)
	// Hyper-sparse triangular solves: FTRANs/BTRANs completed on the
	// symbolic-reachability path versus solves whose predicted fill blew
	// the density gate and ran the dense O(m) loops instead. A healthy
	// sparse-dominated workload shows ftrans+btrans far above fallbacks.
	engineFamily("lp_sparse_ftrans_total", "Hyper-sparse FTRAN solves completed.", s.LPSparseFT)
	engineFamily("lp_sparse_btrans_total", "Hyper-sparse BTRAN solves completed.", s.LPSparseBT)
	engineFamily("lp_dense_fallbacks_total", "Basis solves past the density gate (dense path).", s.LPDenseFalls)
	// Branch-and-price engine: master columns the pricing problem generated
	// and pricing rounds run. Rising columns with flat nodes is the pattern
	// formulation closing instances at the master LP instead of branching.
	engineFamily("columns_generated_total", "Branch-and-price master columns generated.", s.ColumnsGen)
	engineFamily("pricing_rounds_total", "Branch-and-price pricing-problem invocations.", s.PriceRounds)

	scalar("solve_errors_total", "counter", "Solve requests that ended in error.", s.Errors)
	scalar("jobs_cancelled_total", "counter", "Jobs cancelled by clients or context death.", s.Cancelled)
	// Robustness counters: the degradation ladder (optimal → anytime
	// incumbent → greedy fallback → shed) plus recovered solver panics.
	scalar("solve_timeouts_total", "counter", "Solves stopped by a deadline before proving optimality.", s.Timeouts)
	scalar("anytime_solves_total", "counter", "Timed-out solves that still served their best incumbent.", s.Anytime)
	scalar("fallback_solves_total", "counter", "Timed-out solves served by the greedy list fallback.", s.Fallbacks)
	scalar("jobs_shed_total", "counter", "Queued jobs dropped because their deadline had already expired.", s.Shed)
	scalar("worker_panics_total", "counter", "Solver panics recovered without losing the daemon.", s.WorkerPanics)
	scalar("cache_hits_total", "counter", "Memo cache hits.", cache.Hits)
	scalar("cache_misses_total", "counter", "Memo cache misses (fresh solves).", cache.Misses)
	scalar("cache_inflight_shared_total", "counter", "Requests deduplicated onto an in-flight identical solve.", cache.Shared)
	scalar("cache_evictions_total", "counter", "LRU evictions.", cache.Evictions)
	scalar("cache_remap_fallbacks_total", "counter", "Cache hits whose canonical transfer failed verification.", cache.RemapFallbacks)
	scalar("cache_entries", "gauge", "Entries resident in the memo cache.", cache.Entries)
	head("cache_hit_rate", "gauge", "Cache (hits+shared)/lookups.")
	fmt.Fprintf(&b, "sparcsd_cache_hit_rate %.4f\n", cache.HitRate())
	scalar("queue_depth", "gauge", "Jobs waiting in the scheduler queue.", queueDepth)
	head("jobs", "gauge", "Jobs by scheduler state.")
	fmt.Fprintf(&b, "sparcsd_jobs{state=%q} %d\n", "running", running)
	fmt.Fprintf(&b, "sparcsd_jobs{state=%q} %d\n", "queued", queueDepth)

	// The flight-recorder tentpole's service layer: per-(engine, outcome)
	// fixed-bucket latency histograms. Every terminal outcome lands here.
	if len(hists) > 0 {
		head("solve_duration_seconds", "histogram", "End-to-end solve latency by engine and terminal outcome.")
		for _, hl := range hists {
			uppers := hl.hist.Uppers()
			cum := hl.hist.Cumulative()
			for i, upper := range uppers {
				fmt.Fprintf(&b, "sparcsd_solve_duration_seconds_bucket{engine=%q,outcome=%q,le=%q} %d\n",
					hl.key.engine, hl.key.outcome, formatUpper(upper), cum[i])
			}
			fmt.Fprintf(&b, "sparcsd_solve_duration_seconds_bucket{engine=%q,outcome=%q,le=\"+Inf\"} %d\n",
				hl.key.engine, hl.key.outcome, cum[len(cum)-1])
			fmt.Fprintf(&b, "sparcsd_solve_duration_seconds_sum{engine=%q,outcome=%q} %.6f\n",
				hl.key.engine, hl.key.outcome, hl.hist.Sum())
			fmt.Fprintf(&b, "sparcsd_solve_duration_seconds_count{engine=%q,outcome=%q} %d\n",
				hl.key.engine, hl.key.outcome, hl.hist.Count())
		}
	}
	// Per-phase cumulative solver time, folded from fresh solves' traces.
	if len(phases) > 0 {
		head("phase_seconds_total", "counter", "Cumulative solver time per pipeline phase (fresh solves).")
		for _, pl := range phases {
			fmt.Fprintf(&b, "sparcsd_phase_seconds_total{engine=%q,phase=%q} %.6f\n",
				pl.engine, pl.phase, float64(pl.ns)/1e9)
		}
	}
	// Legacy summary retained for dashboard continuity; quantiles are now
	// interpolated from the merged histograms rather than a sample ring.
	head("solve_latency_seconds", "summary", "Solve latency quantiles across all engines and outcomes.")
	fmt.Fprintf(&b, "sparcsd_solve_latency_seconds{quantile=\"0.5\"} %.6f\n", merged.Quantile(0.50))
	fmt.Fprintf(&b, "sparcsd_solve_latency_seconds{quantile=\"0.99\"} %.6f\n", merged.Quantile(0.99))
	fmt.Fprintf(&b, "sparcsd_solve_latency_seconds_sum %.6f\n", merged.Sum())
	fmt.Fprintf(&b, "sparcsd_solve_latency_seconds_count %d\n", merged.Count())
	scalar("uptime_seconds", "gauge", "Seconds since service start.", s.UptimeMS/1000)
	return b.String()
}

// formatUpper renders a histogram bucket bound the way Prometheus clients
// do: shortest float form ("0.005", "1", "2.5").
func formatUpper(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime/debug"
	"time"

	"repro/internal/obs"
	"repro/internal/tempart"
)

// Config tunes the service.
type Config struct {
	// Workers bounds concurrent solves (the worker pool size; <= 0
	// selects 4).
	Workers int
	// QueueCap bounds the number of queued-but-unstarted jobs (<= 0
	// selects 256); past it the API answers 503.
	QueueCap int
	// CacheSize bounds the memo cache in entries (<= 0 selects 1024).
	CacheSize int
	// MaxBodyBytes bounds request bodies (<= 0 selects 8 MiB).
	MaxBodyBytes int64
	// FlightSize bounds the /debug/solves ring (<= 0 selects 64).
	FlightSize int
	// TraceEvents caps a trace=true request's event buffer (<= 0
	// selects 4096; drops past it are counted, never reallocated).
	TraceEvents int
	// DefaultDeadlineMS applies to requests that carry no deadline_ms of
	// their own (<= 0 leaves them unbounded). A per-request deadline_ms
	// always wins.
	DefaultDeadlineMS int
	// Logger receives structured request logs (one line per terminal
	// solve, keyed by request ID). nil discards them.
	Logger *slog.Logger
}

// Server is the partitioning service: request parsing, the cache-aware
// solve path, and the HTTP API. Create with New, serve via Handler, stop
// with Shutdown.
type Server struct {
	cfg     Config
	cache   *Cache
	sched   *Scheduler
	metrics *Metrics
	flight  *FlightRecorder
	log     *slog.Logger
	mux     *http.ServeMux
}

// New builds a ready-to-serve Server.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.TraceEvents <= 0 {
		cfg.TraceEvents = 4096
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		cfg:     cfg,
		cache:   NewCache(cfg.CacheSize),
		metrics: NewMetrics(),
		flight:  NewFlightRecorder(cfg.FlightSize),
		log:     log,
	}
	s.sched = NewScheduler(cfg.Workers, cfg.QueueCap, s.solve)
	s.sched.onShed = func(jobID string) {
		s.metrics.RecordShed()
		s.log.LogAttrs(context.Background(), slog.LevelWarn, "job shed",
			slog.String("job_id", jobID))
	}
	// Backstop for panics outside runBackend's own recovery (the usual
	// solver panic is recovered there, closer to the fault).
	s.sched.onPanic = func(jobID string, v any, stack []byte) {
		s.metrics.RecordWorkerPanic()
		s.log.LogAttrs(context.Background(), slog.LevelError, "worker panic",
			slog.String("job_id", jobID),
			slog.String("panic", fmt.Sprint(v)),
			slog.String("stack", string(stack)))
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleJobCancel)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/solves", s.handleDebugSolves)
	return s
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// CacheStats exposes cache counters (tests and /healthz).
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// Scheduler exposes the job scheduler (tests).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Shutdown cancels in-flight work and waits for the worker pool to drain.
func (s *Server) Shutdown() { s.sched.Shutdown() }

// coarseTraceEvents sizes the always-on recorder attached to untraced
// fresh solves: large enough to hold every span of a deep relax-N loop
// (so the per-phase metrics and flight-recorder breakdowns stay complete),
// small enough to be irrelevant next to model build allocations.
const coarseTraceEvents = 512

// solve is the cache-aware execution path every request funnels through
// (the scheduler's workers call it): memo-cache lookup, singleflight join,
// or a fresh backend solve, followed by canonical-transfer verification for
// results that came from a different (isomorphic) graph.
func (s *Server) solve(ctx context.Context, req *Request) (*Result, error) {
	start := time.Now()
	be, err := LookupBackend(req.Engine)
	if err != nil {
		return nil, err
	}
	// A deadline_ms request bounds the whole solve with a context deadline;
	// tempart threads it down to the branch-and-bound search, which returns
	// its best incumbent instead of an error when time runs out.
	if req.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
		defer cancel()
	}

	// runBackend executes a fresh solve with a recorder attached — the
	// request's own full-size recorder for trace=true, otherwise a small
	// always-on one that feeds the per-phase metrics and the flight
	// recorder. The request is shallow-copied so the shared *Request is
	// never mutated under the singleflight. A solver panic is recovered
	// here — below the cache's detached flight goroutine as well as the
	// worker's inline path — so one poisoned request fails alone instead of
	// taking the daemon down.
	runBackend := func(sctx context.Context, rec *obs.Recorder) (p *tempart.Partitioning, tr *obs.Trace, err error) {
		defer func() {
			if r := recover(); r != nil {
				s.metrics.RecordWorkerPanic()
				s.log.LogAttrs(ctx, slog.LevelError, "solver panic",
					slog.String("request_id", obs.RequestID(ctx)),
					slog.String("engine", be.Name()),
					slog.String("panic", fmt.Sprint(r)),
					slog.String("stack", string(debug.Stack())))
				p, tr, err = nil, nil, fmt.Errorf("service: solver panic: %v", r)
			}
		}()
		if rec == nil {
			rec = obs.NewRecorder(coarseTraceEvents)
		}
		r2 := *req
		r2.TraceSink = rec
		p, err = be.Solve(sctx, &r2)
		tr = rec.Trace()
		s.metrics.RecordPhases(be.Name(), tr)
		return p, tr, err
	}

	finish := func(p *tempart.Partitioning, tr *obs.Trace, origin Origin, err error) (*Result, error) {
		d := time.Since(start)
		s.metrics.RecordSolve(be.Name(), d, err)
		if err != nil && req.DeadlineMS > 0 && be.Name() != "list" &&
			(errors.Is(err, context.DeadlineExceeded) || errors.Is(err, tempart.ErrDeadline)) {
			// Degradation ladder rung 3: the deadline expired before the
			// search found any incumbent. Serve the greedy list
			// partitioning, labeled as a fallback with an honest bound,
			// instead of an error. (Rung 2 — a timed-out search WITH an
			// incumbent — never reaches here: it comes back err == nil with
			// p.Partial set.)
			if fp := s.greedyFallback(ctx, req); fp != nil {
				p, tr, err = fp, nil, nil
			}
		}
		fr := SolveRecord{
			ID:          obs.RequestID(ctx),
			Engine:      be.Name(),
			Graph:       req.Graph.Name,
			Board:       req.BoardName,
			Origin:      string(origin),
			Outcome:     outcomeOf(err),
			StartUnixMS: start.UnixMilli(),
			SolveMS:     float64(d.Microseconds()) / 1e3,
			Traced:      req.Trace,
		}
		if tr != nil {
			for phase, ns := range tr.PhaseTotals() {
				if fr.PhaseMS == nil {
					fr.PhaseMS = make(map[string]float64, 5)
				}
				fr.PhaseMS[phase] = float64(ns) / 1e6
			}
		}
		logAttrs := []slog.Attr{
			slog.String("request_id", fr.ID),
			slog.String("engine", fr.Engine),
			slog.String("graph", fr.Graph),
			slog.String("board", fr.Board),
			slog.String("origin", fr.Origin),
			slog.String("outcome", fr.Outcome),
			slog.Float64("solve_ms", fr.SolveMS),
		}
		if err != nil {
			fr.Error = err.Error()
			s.flight.Record(fr)
			level := slog.LevelWarn
			if fr.Outcome == OutcomeCancelled {
				level = slog.LevelInfo
			}
			s.log.LogAttrs(ctx, level, "solve",
				append(logAttrs, slog.String("error", fr.Error))...)
			return nil, err
		}
		if origin == OriginMiss {
			s.metrics.RecordSearch(be.Name(), SearchCounters{
				Nodes:               p.Stats.Nodes,
				PrunedCombinatorial: p.Stats.PrunedCombinatorial,
				LPSolvesSkipped:     p.Stats.LPSolvesSkipped,
				CutsAdded:           p.Stats.CutsAdded,
				SeparationRounds:    p.Stats.SeparationRounds,
				ConflictCuts:        p.Stats.ConflictCuts,
				CGCuts:              p.Stats.CGCuts,
				DualBoundFathoms:    p.Stats.DualBoundFathoms,
				LPRefactorizations:  p.Stats.Solver.Refactorizations,
				LPBoundFlips:        p.Stats.Solver.BoundFlips,
				LPSparseFTRANs:      p.Stats.Solver.SparseFTRANs,
				LPSparseBTRANs:      p.Stats.Solver.SparseBTRANs,
				LPDenseFallbacks:    p.Stats.Solver.DenseFallbacks,
				ColumnsGenerated:    p.Stats.ColumnsGenerated,
				PricingRounds:       p.Stats.PricingRounds,
			})
		}
		res := NewResult(req.Graph, req.BoardName, be.Name(), p)
		res.Cache = string(origin)
		if res.Partial {
			fr.Partial, fr.Fallback = res.Partial, res.Fallback
			if res.Fallback {
				logAttrs = append(logAttrs, slog.Bool("fallback", true))
			} else if origin == OriginMiss {
				s.metrics.RecordAnytime()
			}
			logAttrs = append(logAttrs,
				slog.Bool("partial", true), slog.Float64("gap_ns", res.GapNS))
		}
		if origin == OriginHit || origin == OriginShared {
			// The search ran (at most) once, elsewhere; report zero local
			// search so aggregate node counts stay meaningful.
			res.Nodes, res.LPIterations = 0, 0
			res.PrunedCombinatorial, res.LPSolvesSkipped = 0, 0
			res.CutsAdded, res.SeparationRounds = 0, 0
			res.ConflictCuts, res.CGCuts, res.DualBoundFathoms = 0, 0, 0
			res.LPRefactorizations, res.LPBoundFlips = 0, 0
			res.LPSparseFTRANs, res.LPSparseBTRANs, res.LPDenseFallbacks = 0, 0, 0
		}
		res.SolveMS = fr.SolveMS
		if req.Trace {
			res.Trace = tr
		}
		fr.N, fr.Nodes = res.N, res.Nodes
		s.flight.Record(fr)
		s.log.LogAttrs(ctx, slog.LevelInfo, "solve",
			append(logAttrs, slog.Int("n", fr.N), slog.Int("nodes", fr.Nodes))...)
		return res, nil
	}

	// Traced requests bypass the cache in both directions: a trace
	// describes this very solve, so it can neither be served from a memo
	// entry nor be allowed to populate one.
	if req.NoCache || req.Trace {
		var rec *obs.Recorder
		if req.Trace {
			rec = obs.NewRecorder(s.cfg.TraceEvents)
		}
		p, tr, err := runBackend(ctx, rec)
		return finish(p, tr, OriginMiss, err)
	}

	key := req.CacheKey()
	// Deadline requests stay off the singleflight: a shared flight solves
	// under a detached context that cannot honour this request's deadline,
	// and a partial result must never be handed to other waiters or stored.
	// A complete cached result still serves (it dominates any partial), and
	// a solve that finishes inside its deadline still populates the cache —
	// only partial results bypass it, in both directions.
	if req.DeadlineMS > 0 {
		if ent, ok := s.cache.Get(key); ok {
			if p, aerr := ent.apply(req); aerr == nil {
				return finish(p, nil, OriginHit, nil)
			}
			s.cache.noteRemapFallback()
		}
		p, tr, err := runBackend(ctx, nil)
		if err == nil && !p.Partial {
			s.cache.Put(key, newEntry(req.Graph, p))
		}
		return finish(p, tr, OriginMiss, err)
	}

	// freshTrace is written by the singleflight closure only when THIS
	// call launched it (origin == miss); the flight's done-channel close
	// orders the write before our read.
	var freshTrace *obs.Trace
	ent, origin, err := s.cache.GetOrSolve(ctx, key, func(sctx context.Context) (*entry, error) {
		p, tr, err := runBackend(sctx, nil)
		if err != nil {
			return nil, err
		}
		if p.Partial {
			// Unreachable (the flight's context carries no deadline), but
			// the never-cache-a-partial invariant is cheap to enforce.
			return nil, fmt.Errorf("service: partial result cannot be cached")
		}
		freshTrace = tr
		return newEntry(req.Graph, p), nil
	})
	if err != nil {
		return finish(nil, nil, origin, err)
	}
	p, err := ent.apply(req)
	if err != nil {
		// Canonical transfer failed (isomorphic-in-hash but not
		// transfer-compatible, or a genuine hash collision): solve this
		// graph directly rather than serving a wrong answer.
		s.cache.noteRemapFallback()
		var tr *obs.Trace
		p, tr, err = runBackend(ctx, nil)
		return finish(p, tr, OriginMiss, err)
	}
	if origin != OriginMiss {
		freshTrace = nil // another call's solve; its phases are not ours
	}
	return finish(p, freshTrace, origin, nil)
}

// greedyFallback is the last rung of the degradation ladder before an
// error: the deadline expired with no ILP incumbent at all, so solve the
// graph with the registered greedy list backend and label the result
// Partial+Fallback. The presolve floor (tempart.AnytimeLowerBound) keeps
// the reported gap finite and honest. Returns nil when the fallback itself
// fails — the caller then surfaces the original deadline error.
func (s *Server) greedyFallback(ctx context.Context, req *Request) *tempart.Partitioning {
	lb, err := LookupBackend("list")
	if err != nil {
		return nil
	}
	// The request's deadline has already expired; the greedy pass is
	// near-instantaneous, so run it on a short detached context.
	fctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
	defer cancel()
	p, err := lb.Solve(fctx, req)
	if err != nil || p == nil {
		return nil
	}
	p.Optimal = false
	p.Partial = true
	p.Fallback = true
	p.BoundTrusted = true
	p.LatencyBound = tempart.AnytimeLowerBound(req.Graph, req.Board)
	if p.LatencyBound > p.Latency {
		p.LatencyBound = p.Latency
	}
	p.Gap = p.Latency - p.LatencyBound
	s.metrics.RecordFallback()
	return p
}

// --- HTTP plumbing ---

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// errStatus maps solve-path errors to HTTP codes.
func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShutdown), errors.Is(err, ErrDeadlineShed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, tempart.ErrDeadline):
		// Only reachable when the greedy fallback itself failed (deadline
		// requests normally degrade to an anytime or fallback result).
		return http.StatusGatewayTimeout
	case errors.Is(err, tempart.ErrNoSolution), errors.Is(err, tempart.ErrTaskTooLarge):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (*Request, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var sr SolveRequest
	if err := json.NewDecoder(r.Body).Decode(&sr); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("service: bad request body: %w", err))
		return nil, false
	}
	req, err := sr.Parse()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return nil, false
	}
	s.applyDefaults(req)
	return req, true
}

// applyDefaults fills operator-configured request defaults (currently the
// solve deadline) for requests that did not set their own.
func (s *Server) applyDefaults(req *Request) {
	if req.DeadlineMS == 0 && s.cfg.DefaultDeadlineMS > 0 {
		req.DeadlineMS = s.cfg.DefaultDeadlineMS
	}
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	res, err := s.sched.RunSync(r.Context(), req)
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// batchRequest wraps many solves in one call; responses preserve order.
type batchRequest struct {
	Requests []SolveRequest `json:"requests"`
}

type batchItem struct {
	Result *Result `json:"result,omitempty"`
	Error  string  `json:"error,omitempty"`
}

type batchResponse struct {
	Items []batchItem `json:"items"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var br batchRequest
	if err := json.NewDecoder(r.Body).Decode(&br); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("service: bad request body: %w", err))
		return
	}
	if len(br.Requests) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("service: empty batch"))
		return
	}
	resp := batchResponse{Items: make([]batchItem, len(br.Requests))}
	done := make(chan int, len(br.Requests))
	for i := range br.Requests {
		go func(i int) {
			defer func() { done <- i }()
			req, err := br.Requests[i].Parse()
			if err != nil {
				resp.Items[i].Error = err.Error()
				return
			}
			s.applyDefaults(req)
			res, err := s.sched.RunSync(r.Context(), req)
			if err != nil {
				resp.Items[i].Error = err.Error()
				return
			}
			resp.Items[i].Result = res
		}(i)
	}
	for range br.Requests {
		<-done
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	job, err := s.sched.Submit(req)
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{
		"id":         job.ID,
		"status_url": "/v1/jobs/" + job.ID,
	})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("service: unknown job"))
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("service: unknown job"))
		return
	}
	job.Cancel()
	s.metrics.RecordCancelled()
	writeJSON(w, http.StatusOK, job.Status())
}

// healthResponse is the /healthz payload: liveness plus the headline
// operational numbers.
type healthResponse struct {
	Status     string     `json:"status"`
	Engines    []string   `json:"engines"`
	Workers    int        `json:"workers"`
	QueueDepth int        `json:"queue_depth"`
	Running    int        `json:"running"`
	Cache      CacheStats `json:"cache"`
	Metrics    Snapshot   `json:"metrics"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{
		Status:     "ok",
		Engines:    BackendNames(),
		Workers:    s.cfg.Workers,
		QueueDepth: s.sched.QueueDepth(),
		Running:    s.sched.Running(),
		Cache:      s.cache.Stats(),
		Metrics:    s.metrics.Snapshot(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, s.metrics.Exposition(
		s.cache.Stats(), s.sched.QueueDepth(), s.sched.Running()))
}

// handleDebugSolves serves the flight recorder: the last K solves (newest
// first) plus the slowest solve since boot.
func (s *Server) handleDebugSolves(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.flight.Snapshot())
}

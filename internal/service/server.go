package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/tempart"
)

// Config tunes the service.
type Config struct {
	// Workers bounds concurrent solves (the worker pool size; <= 0
	// selects 4).
	Workers int
	// QueueCap bounds the number of queued-but-unstarted jobs (<= 0
	// selects 256); past it the API answers 503.
	QueueCap int
	// CacheSize bounds the memo cache in entries (<= 0 selects 1024).
	CacheSize int
	// MaxBodyBytes bounds request bodies (<= 0 selects 8 MiB).
	MaxBodyBytes int64
}

// Server is the partitioning service: request parsing, the cache-aware
// solve path, and the HTTP API. Create with New, serve via Handler, stop
// with Shutdown.
type Server struct {
	cfg     Config
	cache   *Cache
	sched   *Scheduler
	metrics *Metrics
	mux     *http.ServeMux
}

// New builds a ready-to-serve Server.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	s := &Server{
		cfg:     cfg,
		cache:   NewCache(cfg.CacheSize),
		metrics: NewMetrics(),
	}
	s.sched = NewScheduler(cfg.Workers, cfg.QueueCap, s.solve)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleJobCancel)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// CacheStats exposes cache counters (tests and /healthz).
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// Scheduler exposes the job scheduler (tests).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Shutdown cancels in-flight work and waits for the worker pool to drain.
func (s *Server) Shutdown() { s.sched.Shutdown() }

// solve is the cache-aware execution path every request funnels through
// (the scheduler's workers call it): memo-cache lookup, singleflight join,
// or a fresh backend solve, followed by canonical-transfer verification for
// results that came from a different (isomorphic) graph.
func (s *Server) solve(ctx context.Context, req *Request) (*Result, error) {
	start := time.Now()
	be, err := LookupBackend(req.Engine)
	if err != nil {
		return nil, err
	}

	finish := func(p *tempart.Partitioning, origin Origin, err error) (*Result, error) {
		s.metrics.RecordSolve(be.Name(), time.Since(start), err)
		if err != nil {
			return nil, err
		}
		if origin == OriginMiss {
			s.metrics.RecordSearch(be.Name(), SearchCounters{
				Nodes:               p.Stats.Nodes,
				PrunedCombinatorial: p.Stats.PrunedCombinatorial,
				LPSolvesSkipped:     p.Stats.LPSolvesSkipped,
				CutsAdded:           p.Stats.CutsAdded,
				SeparationRounds:    p.Stats.SeparationRounds,
				ConflictCuts:        p.Stats.ConflictCuts,
				CGCuts:              p.Stats.CGCuts,
				DualBoundFathoms:    p.Stats.DualBoundFathoms,
				LPRefactorizations:  p.Stats.Solver.Refactorizations,
				LPBoundFlips:        p.Stats.Solver.BoundFlips,
			})
		}
		res := NewResult(req.Graph, req.BoardName, be.Name(), p)
		res.Cache = string(origin)
		if origin == OriginHit || origin == OriginShared {
			// The search ran (at most) once, elsewhere; report zero local
			// search so aggregate node counts stay meaningful.
			res.Nodes, res.LPIterations = 0, 0
			res.PrunedCombinatorial, res.LPSolvesSkipped = 0, 0
			res.CutsAdded, res.SeparationRounds = 0, 0
			res.ConflictCuts, res.CGCuts, res.DualBoundFathoms = 0, 0, 0
			res.LPRefactorizations, res.LPBoundFlips = 0, 0
		}
		res.SolveMS = float64(time.Since(start).Microseconds()) / 1e3
		return res, nil
	}

	if req.NoCache {
		p, err := be.Solve(ctx, req)
		return finish(p, OriginMiss, err)
	}

	key := req.CacheKey()
	ent, origin, err := s.cache.GetOrSolve(ctx, key, func(sctx context.Context) (*entry, error) {
		p, err := be.Solve(sctx, req)
		if err != nil {
			return nil, err
		}
		return newEntry(req.Graph, p), nil
	})
	if err != nil {
		return finish(nil, origin, err)
	}
	p, err := ent.apply(req)
	if err != nil {
		// Canonical transfer failed (isomorphic-in-hash but not
		// transfer-compatible, or a genuine hash collision): solve this
		// graph directly rather than serving a wrong answer.
		s.cache.noteRemapFallback()
		p, err = be.Solve(ctx, req)
		return finish(p, OriginMiss, err)
	}
	return finish(p, origin, nil)
}

// --- HTTP plumbing ---

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// errStatus maps solve-path errors to HTTP codes.
func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull) || errors.Is(err, ErrShutdown):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return 499 // client closed request (nginx convention)
	case errors.Is(err, tempart.ErrNoSolution), errors.Is(err, tempart.ErrTaskTooLarge):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (*Request, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var sr SolveRequest
	if err := json.NewDecoder(r.Body).Decode(&sr); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("service: bad request body: %w", err))
		return nil, false
	}
	req, err := sr.Parse()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return nil, false
	}
	return req, true
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	res, err := s.sched.RunSync(r.Context(), req)
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// batchRequest wraps many solves in one call; responses preserve order.
type batchRequest struct {
	Requests []SolveRequest `json:"requests"`
}

type batchItem struct {
	Result *Result `json:"result,omitempty"`
	Error  string  `json:"error,omitempty"`
}

type batchResponse struct {
	Items []batchItem `json:"items"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var br batchRequest
	if err := json.NewDecoder(r.Body).Decode(&br); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("service: bad request body: %w", err))
		return
	}
	if len(br.Requests) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("service: empty batch"))
		return
	}
	resp := batchResponse{Items: make([]batchItem, len(br.Requests))}
	done := make(chan int, len(br.Requests))
	for i := range br.Requests {
		go func(i int) {
			defer func() { done <- i }()
			req, err := br.Requests[i].Parse()
			if err != nil {
				resp.Items[i].Error = err.Error()
				return
			}
			res, err := s.sched.RunSync(r.Context(), req)
			if err != nil {
				resp.Items[i].Error = err.Error()
				return
			}
			resp.Items[i].Result = res
		}(i)
	}
	for range br.Requests {
		<-done
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	job, err := s.sched.Submit(req)
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{
		"id":         job.ID,
		"status_url": "/v1/jobs/" + job.ID,
	})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("service: unknown job"))
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("service: unknown job"))
		return
	}
	job.Cancel()
	s.metrics.RecordCancelled()
	writeJSON(w, http.StatusOK, job.Status())
}

// healthResponse is the /healthz payload: liveness plus the headline
// operational numbers.
type healthResponse struct {
	Status     string     `json:"status"`
	Engines    []string   `json:"engines"`
	Workers    int        `json:"workers"`
	QueueDepth int        `json:"queue_depth"`
	Running    int        `json:"running"`
	Cache      CacheStats `json:"cache"`
	Metrics    Snapshot   `json:"metrics"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{
		Status:     "ok",
		Engines:    BackendNames(),
		Workers:    s.cfg.Workers,
		QueueDepth: s.sched.QueueDepth(),
		Running:    s.sched.Running(),
		Cache:      s.cache.Stats(),
		Metrics:    s.metrics.Snapshot(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, s.metrics.Exposition(
		s.cache.Stats(), s.sched.QueueDepth(), s.sched.Running()))
}

package service

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"

	"sync"

	"repro/internal/arch"
	"repro/internal/dfg"
	"repro/internal/faultinject"
	"repro/internal/lp"
	"repro/internal/tempart"
)

// CacheKey derives the canonical memoization key of a request: the
// structure hash of the normalized task graph (invariant under task
// renaming and task/edge reordering, see dfg.StructureHash), the full board
// parameters, the engine, and every solver knob that can change the
// reported result. Workers and SpeculateN are deliberately excluded — the
// parallel search and the speculative relax-N loop are result-equivalent to
// the sequential path (pinned by the tempart consistency tests), so
// requests differing only in parallelism share one cache entry. Trace and
// TraceSink are likewise excluded: tracing observes a solve without
// changing it (traced requests bypass the cache entirely, but their key —
// were one computed — must equal the untraced key so they could never
// shadow or split a memo entry).
func (r *Request) CacheKey() string {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	puts := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	puts(r.Graph.StructureHash())
	hashBoard(put, puts, r.Board)
	puts(r.Engine)
	put(uint64(r.MaxPartitions))
	put(uint64(r.PathCap))
	put(uint64(r.MaxNodes))
	put(uint64(r.CutRoundsRoot))
	put(uint64(r.CutRoundsNode))
	put(uint64(r.MaxCuts))
	// Pricing changes the pivot trajectory, hence node counts under
	// MaxNodes limits and which optimum ties break to — keyed.
	puts(r.Pricing)
	// Formulation changes the search shape (rows vs branch-and-price),
	// hence which optimum ties break to and the reported stats — keyed.
	puts(r.Formulation)
	if r.NoSymmetryBreaking {
		put(1)
	} else {
		put(0)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// hashBoard folds every result-relevant board parameter into the key (the
// preset name alone would alias distinct custom boards).
func hashBoard(put func(uint64), puts func(string), b arch.Board) {
	put(uint64(b.FPGA.CLBs))
	put(math.Float64bits(b.FPGA.ReconfigTime))
	put(math.Float64bits(b.FPGA.MinClockNS))
	if b.FPGA.PartialReconfig {
		put(1)
	} else {
		put(0)
	}
	kinds := make([]string, 0, len(b.FPGA.ExtraCapacity))
	for k := range b.FPGA.ExtraCapacity {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		puts(k)
		put(uint64(b.FPGA.ExtraCapacity[k]))
	}
	put(uint64(b.Memory.Words))
	put(uint64(b.Memory.WordBits))
	put(math.Float64bits(b.Memory.AccessNS))
	put(math.Float64bits(b.Link.WordTransferNS))
	put(math.Float64bits(b.Link.StartSignalNS))
	put(math.Float64bits(b.Link.FinishSignalNS))
	put(math.Float64bits(b.Link.ConfigLoadNS))
}

// entry is a memoized solve outcome, stored in canonical task order so it
// can be transferred onto any isomorphic request graph.
type entry struct {
	n       int
	optimal bool
	// assignCanon[i] is the partition of the task at canonical position i
	// (dfg.CanonicalOrder) of the solved graph.
	assignCanon []int
	latencyNS   float64
	// The original solve's search statistics, reported on hits for
	// observability (a hit did zero search of its own).
	nodes        int
	prunedComb   int
	lpSkipped    int
	cutsAdded    int
	sepRounds    int
	conflictCuts int
	cgCuts       int
	dualFathoms  int
	lpIters      int
	lpRefactor   int
	lpFlips      int
	lpSparseFT   int
	lpSparseBT   int
	lpDenseFalls int
	pricing      string
	formulation  string
	columnsGen   int
	priceRounds  int
}

// newEntry canonicalizes a partitioning of g into a cache entry.
func newEntry(g *dfg.Graph, p *tempart.Partitioning) *entry {
	e := &entry{
		n:            p.N,
		optimal:      p.Optimal,
		latencyNS:    p.Latency,
		nodes:        p.Stats.Nodes,
		prunedComb:   p.Stats.PrunedCombinatorial,
		lpSkipped:    p.Stats.LPSolvesSkipped,
		cutsAdded:    p.Stats.CutsAdded,
		sepRounds:    p.Stats.SeparationRounds,
		conflictCuts: p.Stats.ConflictCuts,
		cgCuts:       p.Stats.CGCuts,
		dualFathoms:  p.Stats.DualBoundFathoms,
		lpIters:      p.Stats.LPIterations,
		lpRefactor:   p.Stats.Solver.Refactorizations,
		lpFlips:      p.Stats.Solver.BoundFlips,
		lpSparseFT:   p.Stats.Solver.SparseFTRANs,
		lpSparseBT:   p.Stats.Solver.SparseBTRANs,
		lpDenseFalls: p.Stats.Solver.DenseFallbacks,
		pricing:      p.Stats.Pricing,
		formulation:  p.Stats.Formulation,
		columnsGen:   p.Stats.ColumnsGenerated,
		priceRounds:  p.Stats.PricingRounds,
	}
	if p.N > 0 {
		ord := g.CanonicalOrder()
		e.assignCanon = make([]int, len(ord))
		for pos, t := range ord {
			e.assignCanon[pos] = p.Assign[t]
		}
	}
	return e
}

// apply transfers the cached result onto req's graph via its canonical
// order and re-verifies it: the assignment must be feasible and reproduce
// the cached optimum latency. An error means the graphs collided or WL ties
// were not interchangeable — the caller must fall back to a fresh solve
// (this guards correctness against the theoretical imperfection of WL
// hashing; it never silently serves a wrong answer).
func (e *entry) apply(req *Request) (*tempart.Partitioning, error) {
	if faultinject.Fire(faultinject.CacheVerifyFail) {
		return nil, fmt.Errorf("service: injected cache verification failure")
	}
	g := req.Graph
	if e.n == 0 {
		if g.NumTasks() != 0 {
			return nil, fmt.Errorf("service: cached empty result for non-empty graph")
		}
		return &tempart.Partitioning{}, nil
	}
	if len(e.assignCanon) != g.NumTasks() {
		return nil, fmt.Errorf("service: cached assignment has %d tasks, graph has %d",
			len(e.assignCanon), g.NumTasks())
	}
	ord := g.CanonicalOrder()
	assign := make([]int, g.NumTasks())
	for pos, t := range ord {
		assign[t] = e.assignCanon[pos]
	}
	if err := tempart.CheckFeasible(g, req.Board, assign, e.n); err != nil {
		return nil, fmt.Errorf("service: cached assignment infeasible on request graph: %w", err)
	}
	pathCap := req.PathCap
	if pathCap == 0 {
		pathCap = 20000
	}
	paths, err := g.Paths(pathCap)
	if err != nil {
		return nil, err
	}
	delays := tempart.EvaluateDelays(g, assign, e.n, paths)
	lat := tempart.Latency(req.Board, delays)
	if math.Abs(lat-e.latencyNS) > 1e-6*(1+math.Abs(e.latencyNS)) {
		return nil, fmt.Errorf("service: cached latency %g != re-evaluated %g", e.latencyNS, lat)
	}
	return &tempart.Partitioning{
		N: e.n, Assign: assign, Delays: delays, Latency: lat, Optimal: e.optimal,
		Stats: tempart.SolveStats{
			N: e.n, Nodes: e.nodes, LPIterations: e.lpIters,
			PrunedCombinatorial: e.prunedComb, LPSolvesSkipped: e.lpSkipped,
			CutsAdded: e.cutsAdded, SeparationRounds: e.sepRounds,
			ConflictCuts: e.conflictCuts, CGCuts: e.cgCuts,
			DualBoundFathoms: e.dualFathoms,
			ColumnsGenerated: e.columnsGen,
			PricingRounds:    e.priceRounds,
			Solver: lp.SolverStats{
				Refactorizations: e.lpRefactor,
				BoundFlips:       e.lpFlips,
				SparseFTRANs:     e.lpSparseFT,
				SparseBTRANs:     e.lpSparseBT,
				DenseFallbacks:   e.lpDenseFalls,
			},
			Pricing:     e.pricing,
			Formulation: e.formulation,
		},
	}, nil
}

// Origin reports how the cache produced a result.
type Origin string

const (
	// OriginMiss: this caller ran the solve.
	OriginMiss Origin = "miss"
	// OriginHit: served from the memo cache.
	OriginHit Origin = "hit"
	// OriginShared: deduplicated onto an identical in-flight solve.
	OriginShared Origin = "shared"
)

// CacheStats is a snapshot of cache activity.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Shared    uint64 `json:"shared"`
	Evictions uint64 `json:"evictions"`
	// RemapFallbacks counts hits whose canonical transfer failed
	// verification and fell back to a fresh solve.
	RemapFallbacks uint64 `json:"remap_fallbacks"`
	Entries        int    `json:"entries"`
}

// HitRate returns (hits+shared) / lookups, the headline metric.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Shared
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Shared) / float64(total)
}

// flight is one in-flight solve shared by all waiters with the same key.
// The solve runs in its own goroutine under a context that is cancelled
// only when every waiter has abandoned it, so one cancelled job never
// aborts the solve other identical requests are waiting on.
type flight struct {
	waiters int
	cancel  context.CancelFunc
	done    chan struct{}
	ent     *entry
	err     error
}

// Cache is the memoizing solve cache: an LRU of canonical entries plus the
// singleflight table. Safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used; values are *lruItem
	entries map[string]*list.Element
	flights map[string]*flight
	stats   CacheStats
}

type lruItem struct {
	key string
	ent *entry
}

// NewCache returns a cache bounded to max entries (<= 0 selects 1024).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = 1024
	}
	return &Cache{
		max:     max,
		order:   list.New(),
		entries: make(map[string]*list.Element),
		flights: make(map[string]*flight),
	}
}

// Stats snapshots cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	return s
}

func (c *Cache) noteRemapFallback() {
	c.mu.Lock()
	c.stats.RemapFallbacks++
	c.mu.Unlock()
}

// insertLocked stores an entry and evicts the LRU tail past capacity.
func (c *Cache) insertLocked(key string, e *entry) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruItem).ent = e
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruItem{key: key, ent: e})
	for len(c.entries) > c.max {
		tail := c.order.Back()
		it := tail.Value.(*lruItem)
		c.order.Remove(tail)
		delete(c.entries, it.key)
		c.stats.Evictions++
	}
}

// Get returns the stored entry for key, counting a hit or a miss. It is
// the lookup half of the deadline-request path, which stays off the
// singleflight: a shared flight solves under a detached context that
// cannot honour a per-request deadline, and a partial result must never
// be handed to other waiters. Cached entries are always complete, so
// serving one to a deadline request is strictly better than any partial.
func (c *Cache) Get(key string) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.stats.Hits++
		return el.Value.(*lruItem).ent, true
	}
	c.stats.Misses++
	return nil, false
}

// Put stores a complete solve result under key (the store half of the
// deadline-request path; callers must never Put a partial result).
func (c *Cache) Put(key string, e *entry) {
	c.mu.Lock()
	c.insertLocked(key, e)
	c.mu.Unlock()
}

// GetOrSolve returns the entry for key, solving at most once per key across
// all concurrent callers: a stored entry is returned immediately (hit); an
// identical in-flight solve is joined (shared); otherwise solve runs in a
// detached goroutine (miss) whose context is cancelled only when every
// waiter's ctx has been cancelled. Errors are never cached.
func (c *Cache) GetOrSolve(ctx context.Context, key string,
	solve func(context.Context) (*entry, error)) (*entry, Origin, error) {

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.stats.Hits++
		ent := el.Value.(*lruItem).ent
		c.mu.Unlock()
		return ent, OriginHit, nil
	}
	if f, ok := c.flights[key]; ok {
		f.waiters++
		c.stats.Shared++
		c.mu.Unlock()
		return c.wait(ctx, key, f, OriginShared)
	}
	sctx, cancel := context.WithCancel(context.Background())
	f := &flight{waiters: 1, cancel: cancel, done: make(chan struct{})}
	c.flights[key] = f
	c.stats.Misses++
	c.mu.Unlock()

	go func() {
		ent, err := solve(sctx)
		c.mu.Lock()
		f.ent, f.err = ent, err
		if c.flights[key] == f {
			delete(c.flights, key)
		}
		if err == nil {
			c.insertLocked(key, ent)
		}
		c.mu.Unlock()
		cancel()
		close(f.done)
	}()
	return c.wait(ctx, key, f, OriginMiss)
}

// wait blocks until the flight completes or ctx is cancelled. The last
// waiter to abandon a flight cancels the underlying solve.
func (c *Cache) wait(ctx context.Context, key string, f *flight, origin Origin) (*entry, Origin, error) {
	select {
	case <-f.done:
		return f.ent, origin, f.err
	case <-ctx.Done():
		c.mu.Lock()
		f.waiters--
		if f.waiters == 0 {
			if c.flights[key] == f {
				delete(c.flights, key)
			}
			f.cancel()
		}
		c.mu.Unlock()
		return nil, origin, ctx.Err()
	}
}

package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/hls"
	"repro/internal/jpeg"
)

// TestDCTInvariantThroughService pins the paper's headline result end to
// end through the service layer: POST /v1/solve with the 32-task DCT graph
// must return the CPLEX-verified optimum (N=3, latency 300001330 ns, the
// 16 T1 | 8 T2 | 8 T2 split), proven optimal. This protects sparcsd
// consumers during solver rewrites — if any layer of the prune-first stack
// (presolve bounds, symmetry rows, best-first search, sparse simplex)
// breaks the optimum, this fails before a client sees a wrong answer.
func TestDCTInvariantThroughService(t *testing.T) {
	g, err := jpeg.BuildDCTGraph(hls.XC4000Library(), hls.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 2})

	code, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{
		Graph: marshalGraph(t, g), Board: "paper",
	})
	if code != http.StatusOK {
		t.Fatalf("solve: HTTP %d: %s", code, body)
	}
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.N != 3 {
		t.Fatalf("N = %d, want 3", res.N)
	}
	if res.LatencyNS != 300001330 {
		t.Fatalf("latency = %.0f ns, want 300001330", res.LatencyNS)
	}
	if !res.Optimal {
		t.Fatal("DCT partitioning not proven optimal")
	}
	// The paper's split: 16 T1 tasks in partition 0, 8 T2 in each of 1, 2.
	types := map[int]map[string]int{0: {}, 1: {}, 2: {}}
	for ti := 0; ti < g.NumTasks(); ti++ {
		p, ok := res.Assign[g.Task(ti).Name]
		if !ok {
			t.Fatalf("assignment lost task %q", g.Task(ti).Name)
		}
		types[p][g.Task(ti).Type]++
	}
	if types[0]["T1"] != 16 || types[1]["T2"] != 8 || types[2]["T2"] != 8 {
		t.Errorf("partition contents = %v, want 16 T1 | 8 T2 | 8 T2", types)
	}

	// The fresh solve's search counters surface in /metrics so production
	// can watch how much work the presolve fathoms.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(raw)
	for _, want := range []string{
		`sparcsd_bb_nodes_total{engine="ilp"}`,
		`sparcsd_bb_pruned_combinatorial_total{engine="ilp"}`,
		`sparcsd_lp_solves_skipped_total{engine="ilp"}`,
		`sparcsd_cuts_added_total{engine="ilp"}`,
		`sparcsd_separation_rounds_total{engine="ilp"}`,
		`sparcsd_conflict_cuts_total{engine="ilp"}`,
		`sparcsd_cg_cuts_total{engine="ilp"}`,
		`sparcsd_dual_bound_fathoms_total{engine="ilp"}`,
		`sparcsd_lp_refactorizations_total{engine="ilp"}`,
		`sparcsd_lp_bound_flips_total{engine="ilp"}`,
		`sparcsd_lp_sparse_ftrans_total{engine="ilp"}`,
		`sparcsd_lp_sparse_btrans_total{engine="ilp"}`,
		`sparcsd_lp_dense_fallbacks_total{engine="ilp"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s\n%s", want, metrics)
		}
	}
}

package service

import (
	"encoding/json"
	"fmt"

	"repro/internal/arch"
	"repro/internal/dfg"
	"repro/internal/obs"
	"repro/internal/tempart"
)

// SolveRequest is the wire form of a solve request, shared by
// POST /v1/solve, /v1/jobs, and each element of /v1/batch.
type SolveRequest struct {
	// Graph is a task graph in the dfg wire schema (the same JSON that
	// cmd/tgen emits and cmd/sparcs -graph consumes).
	Graph json.RawMessage `json:"graph"`
	// Board selects an architecture preset (default "paper").
	Board string `json:"board,omitempty"`
	// Engine selects the backend (default "ilp").
	Engine string `json:"engine,omitempty"`

	Workers            int  `json:"workers,omitempty"`
	SpeculateN         int  `json:"speculate_n,omitempty"`
	MaxPartitions      int  `json:"max_partitions,omitempty"`
	PathCap            int  `json:"path_cap,omitempty"`
	MaxNodes           int  `json:"max_nodes,omitempty"`
	NoSymmetryBreaking bool `json:"no_symmetry_breaking,omitempty"`
	NoCache            bool `json:"no_cache,omitempty"`

	// DeadlineMS bounds the solve's wall-clock time in milliseconds
	// (0 = none). When the deadline expires mid-search the service does
	// not error: it returns the best incumbent found so far (Result.Partial
	// with a reported gap), or the greedy fallback when the search produced
	// no incumbent at all. Deadline requests never share the singleflight
	// and partial results never touch the cache; DeadlineMS is excluded
	// from the cache key because any result it stores is complete.
	DeadlineMS int `json:"deadline_ms,omitempty"`

	// Trace returns the solve's phase timeline, counters, and sampled
	// search progression in Result.Trace. A traced request is never
	// served from (or stored in) the cache and is excluded from the
	// cache key.
	Trace bool `json:"trace,omitempty"`

	// Cutting-plane budgets (0 = engine defaults). CutRoundsRoot and
	// CutRoundsNode bound separation rounds per node at the root and
	// below; MaxCuts bounds the shared cut pool before compaction. They
	// shape the search (and with pathological values its node counts), so
	// they are part of the solve-cache key.
	CutRoundsRoot int `json:"cut_rounds_root,omitempty"`
	CutRoundsNode int `json:"cut_rounds_node,omitempty"`
	MaxCuts       int `json:"max_cuts,omitempty"`

	// Pricing selects the dual simplex pricing rule: "" or "devex" (the
	// default, approximate reference weights) or "steepest-edge" (exact
	// dual steepest edge — one extra FTRAN per dual pivot buys exact row
	// weights and usually fewer pivots on drift-prone models). The optimum
	// is the same either way, but the pivot trajectory — and with it node
	// counts under MaxNodes limits — can differ, so it is part of the
	// solve-cache key.
	Pricing string `json:"pricing,omitempty"`

	// Formulation selects the ILP backend's model: "" or "rows" (the
	// assignment-variable row model) or "patterns" (branch-and-price over
	// partition-pattern columns — falls back to rows when the instance
	// carries inter-partition data the pattern master cannot price). The
	// optimum is the same either way, but the search shape and stats
	// differ, so it is part of the solve-cache key.
	Formulation string `json:"formulation,omitempty"`
}

// Parse validates the wire request into a Request.
func (sr *SolveRequest) Parse() (*Request, error) {
	if len(sr.Graph) == 0 {
		return nil, fmt.Errorf("service: request has no graph")
	}
	var g dfg.Graph
	if err := json.Unmarshal(sr.Graph, &g); err != nil {
		return nil, fmt.Errorf("service: bad graph: %w", err)
	}
	boardName := sr.Board
	if boardName == "" {
		boardName = "paper"
	}
	board, err := arch.BoardByName(boardName)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	engine := sr.Engine
	if engine == "" {
		engine = "ilp"
	}
	if _, err := LookupBackend(engine); err != nil {
		return nil, err
	}
	if sr.Workers < 0 || sr.SpeculateN < 0 || sr.MaxPartitions < 0 ||
		sr.PathCap < 0 || sr.MaxNodes < 0 ||
		sr.CutRoundsRoot < 0 || sr.CutRoundsNode < 0 || sr.MaxCuts < 0 ||
		sr.DeadlineMS < 0 {
		return nil, fmt.Errorf("service: negative solver knob")
	}
	switch sr.Pricing {
	case "", "devex", "steepest-edge":
	default:
		return nil, fmt.Errorf("service: unknown pricing %q (have: devex, steepest-edge)", sr.Pricing)
	}
	switch sr.Formulation {
	case "", tempart.FormulationRows, tempart.FormulationPatterns:
	default:
		return nil, fmt.Errorf("service: unknown formulation %q (have: rows, patterns)", sr.Formulation)
	}
	return &Request{
		Graph: &g,
		Board: board,
		// Report the resolved board name (not the preset alias) so the
		// service payload matches cmd/sparcs -o json exactly.
		BoardName:          board.Name,
		Engine:             engine,
		Workers:            sr.Workers,
		SpeculateN:         sr.SpeculateN,
		MaxPartitions:      sr.MaxPartitions,
		PathCap:            sr.PathCap,
		MaxNodes:           sr.MaxNodes,
		CutRoundsRoot:      sr.CutRoundsRoot,
		CutRoundsNode:      sr.CutRoundsNode,
		MaxCuts:            sr.MaxCuts,
		Pricing:            sr.Pricing,
		Formulation:        sr.Formulation,
		NoSymmetryBreaking: sr.NoSymmetryBreaking,
		NoCache:            sr.NoCache,
		Trace:              sr.Trace,
		DeadlineMS:         sr.DeadlineMS,
	}, nil
}

// PartitionResult describes one temporal partition in a Result.
type PartitionResult struct {
	Index   int      `json:"index"` // 0-based execution order
	Tasks   []string `json:"tasks"`
	CLBs    int      `json:"clbs"`
	DelayNS float64  `json:"delay_ns"`
}

// Result is the machine-readable solve payload. cmd/sparcs emits exactly
// this struct under `-o json`, so CLI and service clients parse one schema.
type Result struct {
	Graph      string            `json:"graph"`
	Engine     string            `json:"engine"`
	Board      string            `json:"board"`
	N          int               `json:"n"`
	Optimal    bool              `json:"optimal"`
	LatencyNS  float64           `json:"latency_ns"`

	// Anytime fields (deadline_ms requests). Partial marks a result whose
	// proof was cut short by the deadline: the assignment is feasible but
	// possibly suboptimal, with the search's proven lower bound and gap
	// attached. Fallback additionally marks a result produced by the greedy
	// list backend because the ILP had no incumbent at the deadline.
	// BoundTrusted mirrors the solver's own attestation of the bound.
	Partial        bool    `json:"partial,omitempty"`
	Fallback       bool    `json:"fallback,omitempty"`
	LatencyBoundNS float64 `json:"latency_bound_ns,omitempty"`
	GapNS          float64 `json:"gap_ns,omitempty"`
	BoundTrusted   bool    `json:"bound_trusted,omitempty"`

	Partitions []PartitionResult `json:"partitions"`
	// Assign maps task name -> 0-based partition.
	Assign map[string]int `json:"assign,omitempty"`

	// Solver statistics (zero for pure cache hits). PrunedCombinatorial and
	// LPSolvesSkipped report how much of the branch-and-bound tree the
	// presolve fathomed without running the simplex; CutsAdded and
	// SeparationRounds how much the cutting-plane engine grew the node LPs
	// instead of branching; LPRefactorizations and LPBoundFlips how the
	// simplex kernel spent the iterations (basis reinversions the
	// Forrest–Tomlin update path could not avoid, and dual long-step bound
	// flips that absorbed infeasibility without a pivot).
	// LPSparseFTRANs/LPSparseBTRANs count basis solves the hyper-sparse
	// kernel completed on the symbolic-reachability path, LPDenseFallbacks
	// the ones that exceeded the density gate and fell back to the dense
	// O(m) loops; Pricing names the dual pricing rule the engine ran with.
	Nodes               int     `json:"nodes,omitempty"`
	PrunedCombinatorial int     `json:"nodes_pruned_combinatorial,omitempty"`
	LPSolvesSkipped     int     `json:"lp_solves_skipped,omitempty"`
	CutsAdded           int     `json:"cuts_added,omitempty"`
	SeparationRounds    int     `json:"separation_rounds,omitempty"`
	ConflictCuts        int     `json:"conflict_cuts,omitempty"`
	CGCuts              int     `json:"cg_cuts,omitempty"`
	DualBoundFathoms    int     `json:"dual_bound_fathoms,omitempty"`
	LPIterations        int     `json:"lp_iterations,omitempty"`
	LPRefactorizations  int     `json:"lp_refactorizations,omitempty"`
	LPBoundFlips        int     `json:"lp_bound_flips,omitempty"`
	LPSparseFTRANs      int     `json:"lp_sparse_ftrans,omitempty"`
	LPSparseBTRANs      int     `json:"lp_sparse_btrans,omitempty"`
	LPDenseFallbacks    int     `json:"lp_dense_fallbacks,omitempty"`
	Pricing             string  `json:"pricing,omitempty"`
	// Formulation names the ILP model the solve actually ran ("rows" or
	// "patterns" — the latter may fall back to rows when inapplicable);
	// ColumnsGenerated and PricingRounds report the branch-and-price
	// engine's column-generation effort (zero under the row model).
	Formulation      string  `json:"formulation,omitempty"`
	ColumnsGenerated int     `json:"columns_generated,omitempty"`
	PricingRounds    int     `json:"pricing_rounds,omitempty"`
	SolveMS          float64 `json:"solve_ms"`

	// Cache reports how the service produced the result: "miss" (fresh
	// solve), "hit" (memo cache), "shared" (deduplicated onto another
	// in-flight identical solve), or "" for direct CLI runs.
	Cache string `json:"cache,omitempty"`

	// Trace is the solve's phase timeline (trace=true requests only):
	// spans, counters, incumbent improvements, and sampled node events.
	Trace *obs.Trace `json:"trace,omitempty"`
}

// NewResult assembles the shared payload from a partitioning.
func NewResult(g *dfg.Graph, boardName, engine string, p *tempart.Partitioning) *Result {
	r := &Result{
		Graph:               g.Name,
		Engine:              engine,
		Board:               boardName,
		N:                   p.N,
		Optimal:             p.Optimal,
		LatencyNS:           p.Latency,
		Partial:             p.Partial,
		Fallback:            p.Fallback,
		LatencyBoundNS:      p.LatencyBound,
		GapNS:               p.Gap,
		BoundTrusted:        p.BoundTrusted,
		Nodes:               p.Stats.Nodes,
		PrunedCombinatorial: p.Stats.PrunedCombinatorial,
		LPSolvesSkipped:     p.Stats.LPSolvesSkipped,
		CutsAdded:           p.Stats.CutsAdded,
		SeparationRounds:    p.Stats.SeparationRounds,
		ConflictCuts:        p.Stats.ConflictCuts,
		CGCuts:              p.Stats.CGCuts,
		DualBoundFathoms:    p.Stats.DualBoundFathoms,
		LPIterations:        p.Stats.LPIterations,
		LPRefactorizations:  p.Stats.Solver.Refactorizations,
		LPBoundFlips:        p.Stats.Solver.BoundFlips,
		LPSparseFTRANs:      p.Stats.Solver.SparseFTRANs,
		LPSparseBTRANs:      p.Stats.Solver.SparseBTRANs,
		LPDenseFallbacks:    p.Stats.Solver.DenseFallbacks,
		Pricing:             p.Stats.Pricing,
		Formulation:         p.Stats.Formulation,
		ColumnsGenerated:    p.Stats.ColumnsGenerated,
		PricingRounds:       p.Stats.PricingRounds,
	}
	if p.N == 0 {
		return r
	}
	r.Assign = make(map[string]int, g.NumTasks())
	r.Partitions = make([]PartitionResult, p.N)
	for i := range r.Partitions {
		r.Partitions[i].Index = i
		if i < len(p.Delays) {
			r.Partitions[i].DelayNS = p.Delays[i]
		}
	}
	for t := 0; t < g.NumTasks(); t++ {
		task := g.Task(t)
		pi := p.Assign[t]
		r.Assign[task.Name] = pi
		r.Partitions[pi].Tasks = append(r.Partitions[pi].Tasks, task.Name)
		r.Partitions[pi].CLBs += task.Resources
	}
	return r
}

package service

import "sync"

// SolveRecord is one completed solve request as the flight recorder keeps
// it: identity, origin, terminal outcome, and the phase breakdown when the
// request ran the backend itself (cache hits have no phases — they did no
// solving).
type SolveRecord struct {
	// ID is the scheduler job ID (doubles as the request ID in logs).
	ID      string `json:"id,omitempty"`
	Engine  string `json:"engine"`
	Graph   string `json:"graph,omitempty"`
	Board   string `json:"board,omitempty"`
	Origin  string `json:"origin"`
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`
	N       int    `json:"n,omitempty"`
	Nodes   int    `json:"nodes,omitempty"`
	// StartUnixMS anchors the record on the wall clock.
	StartUnixMS int64   `json:"start_unix_ms"`
	SolveMS     float64 `json:"solve_ms"`
	// PhaseMS breaks the solve into per-phase cumulative time (from the
	// solve's trace; empty for cache hits and shared waiters).
	PhaseMS map[string]float64 `json:"phase_ms,omitempty"`
	// Traced marks requests that asked for (and received) a full trace.
	Traced bool `json:"traced,omitempty"`
	// Partial marks anytime results (deadline stopped the proof); Fallback
	// additionally marks results served by the greedy backend because the
	// search had no incumbent at the deadline.
	Partial  bool `json:"partial,omitempty"`
	Fallback bool `json:"fallback,omitempty"`
}

// FlightRecorder keeps the last K solve summaries in a ring, with the
// slowest solve since boot pinned separately so a latency spike is still
// inspectable after K faster requests have rotated it out. Safe for
// concurrent use.
type FlightRecorder struct {
	mu      sync.Mutex
	ring    []SolveRecord
	pos     int // next write slot
	n       int // occupied slots
	total   uint64
	slowest SolveRecord
	pinned  bool
}

// NewFlightRecorder returns a recorder holding size records (<= 0
// selects 64).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = 64
	}
	return &FlightRecorder{ring: make([]SolveRecord, size)}
}

// Record stores one completed solve.
func (f *FlightRecorder) Record(r SolveRecord) {
	f.mu.Lock()
	f.ring[f.pos] = r
	f.pos = (f.pos + 1) % len(f.ring)
	if f.n < len(f.ring) {
		f.n++
	}
	f.total++
	if !f.pinned || r.SolveMS > f.slowest.SolveMS {
		f.slowest = r
		f.pinned = true
	}
	f.mu.Unlock()
}

// FlightSnapshot is the GET /debug/solves payload.
type FlightSnapshot struct {
	// Total counts every solve recorded since boot (>= len(Recent)).
	Total uint64 `json:"total"`
	// Slowest is the slowest solve since boot, pinned past ring rotation.
	Slowest *SolveRecord `json:"slowest,omitempty"`
	// Recent lists the last solves, newest first.
	Recent []SolveRecord `json:"recent"`
}

// Snapshot copies the recorder's state, newest first.
func (f *FlightRecorder) Snapshot() FlightSnapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	snap := FlightSnapshot{Total: f.total, Recent: make([]SolveRecord, 0, f.n)}
	for i := 1; i <= f.n; i++ {
		snap.Recent = append(snap.Recent, f.ring[(f.pos-i+len(f.ring))%len(f.ring)])
	}
	if f.pinned {
		s := f.slowest
		snap.Slowest = &s
	}
	return snap
}

package service

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/dfg"
	"repro/internal/tempart"
)

// decodeAssign rebuilds the task-indexed assignment from a Result's
// name-keyed map so it can be checked with tempart.CheckFeasible.
func decodeAssign(t *testing.T, g *dfg.Graph, res *Result) []int {
	t.Helper()
	if len(res.Assign) != g.NumTasks() {
		t.Fatalf("assign has %d tasks, graph has %d", len(res.Assign), g.NumTasks())
	}
	assign := make([]int, g.NumTasks())
	for i := 0; i < g.NumTasks(); i++ {
		p, ok := res.Assign[g.Task(i).Name]
		if !ok {
			t.Fatalf("assign missing task %q", g.Task(i).Name)
		}
		assign[i] = p
	}
	return assign
}

// TestE2EDeadlinePartial is the robustness PR's acceptance test: the
// 26/38 mixed-cardinality hard instance — whose optimality proof runs far
// past any test budget — with a 200 ms deadline must come back HTTP 200
// with a feasible assignment, partial:true, and a finite reported gap;
// never a 504. And the partial result must never touch the cache.
func TestE2EDeadlinePartial(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2})

	graphJSON := hardGraphJSON(t)
	var g dfg.Graph
	if err := g.UnmarshalJSON(graphJSON); err != nil {
		t.Fatal(err)
	}
	board := mustBoard(t, "small")

	req := SolveRequest{
		Graph: graphJSON, Board: "small",
		NoSymmetryBreaking: true, DeadlineMS: 200,
	}
	start := time.Now()
	code, body := postJSON(t, ts.URL+"/v1/solve", req)
	elapsed := time.Since(start)
	if code != http.StatusOK {
		t.Fatalf("deadline solve: code %d, want 200\n%s", code, body)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("200ms-deadline solve took %v", elapsed)
	}
	var res Result
	mustUnmarshal(t, body, &res)
	if !res.Partial {
		t.Fatalf("result not partial: %+v", res)
	}
	if res.Optimal {
		t.Fatal("result claims Optimal AND Partial")
	}
	if res.LatencyBoundNS <= 0 || res.LatencyBoundNS > res.LatencyNS+1e-6 {
		t.Fatalf("latency_bound_ns = %g outside (0, latency=%g]",
			res.LatencyBoundNS, res.LatencyNS)
	}
	if res.GapNS < 0 || res.GapNS != res.GapNS /* NaN */ {
		t.Fatalf("gap_ns = %g, want finite >= 0", res.GapNS)
	}
	assign := decodeAssign(t, &g, &res)
	if err := tempart.CheckFeasible(&g, board, assign, res.N); err != nil {
		t.Fatalf("partial assignment infeasible: %v", err)
	}

	// The partial result must not have populated the cache, and a repeat
	// of the same deadline request must not be served from it.
	if n := svc.CacheStats().Entries; n != 0 {
		t.Fatalf("cache holds %d entries after a partial-only workload", n)
	}
	code, body = postJSON(t, ts.URL+"/v1/solve", req)
	if code != http.StatusOK {
		t.Fatalf("second deadline solve: code %d\n%s", code, body)
	}
	var res2 Result
	mustUnmarshal(t, body, &res2)
	if res2.Cache != string(OriginMiss) {
		t.Fatalf("second deadline solve served from %q, want fresh miss", res2.Cache)
	}
	if !res2.Partial {
		t.Fatal("second deadline solve not partial")
	}

	// The flight recorder labels the partials.
	var fs FlightSnapshot
	if code := getJSON(t, ts.URL+"/debug/solves", &fs); code != http.StatusOK {
		t.Fatalf("/debug/solves code %d", code)
	}
	partials := 0
	for _, r := range fs.Recent {
		if r.Partial {
			partials++
		}
	}
	if partials != 2 {
		t.Fatalf("flight recorder shows %d partial solves, want 2", partials)
	}
}

// TestDeadlineCompleteResultCached pins the other half of the cache
// discipline: a deadline_ms solve that FINISHES in time is a complete
// result — it populates the cache and later requests (with or without a
// deadline) hit it, because DeadlineMS is excluded from the cache key.
func TestDeadlineCompleteResultCached(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2})
	graph := marshalGraph(t, wideGraph())

	code, body := postJSON(t, ts.URL+"/v1/solve",
		SolveRequest{Graph: graph, Board: "small", DeadlineMS: 60000})
	if code != http.StatusOK {
		t.Fatalf("code %d\n%s", code, body)
	}
	var res Result
	mustUnmarshal(t, body, &res)
	if res.Partial || !res.Optimal {
		t.Fatalf("generous deadline should finish optimal, got %+v", res)
	}
	if res.Cache != string(OriginMiss) {
		t.Fatalf("first solve origin %q, want miss", res.Cache)
	}
	if n := svc.CacheStats().Entries; n != 1 {
		t.Fatalf("cache entries = %d, want 1", n)
	}
	for _, deadline := range []int{0, 60000} {
		code, body = postJSON(t, ts.URL+"/v1/solve",
			SolveRequest{Graph: graph, Board: "small", DeadlineMS: deadline})
		if code != http.StatusOK {
			t.Fatalf("deadline=%d: code %d\n%s", deadline, code, body)
		}
		var r2 Result
		mustUnmarshal(t, body, &r2)
		if r2.Cache != string(OriginHit) {
			t.Fatalf("deadline=%d: origin %q, want hit", deadline, r2.Cache)
		}
		if r2.Partial || r2.N != res.N || r2.LatencyNS != res.LatencyNS {
			t.Fatalf("deadline=%d: hit diverged: %+v vs %+v", deadline, r2, res)
		}
	}
}

// TestDefaultDeadlineConfig: an operator-configured default deadline
// (cmd/sparcsd -default-deadline) applies to requests that carry no
// deadline_ms of their own.
func TestDefaultDeadlineConfig(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, DefaultDeadlineMS: 200})
	code, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{
		Graph: hardGraphJSON(t), Board: "small", NoSymmetryBreaking: true,
	})
	if code != http.StatusOK {
		t.Fatalf("code %d\n%s", code, body)
	}
	var res Result
	mustUnmarshal(t, body, &res)
	if !res.Partial {
		t.Fatalf("default deadline not applied: %+v", res)
	}
}

// TestJobStatusExposesDeadline: pollers of an async deadline job can see
// the absolute deadline and tell "still solving" from "about to be shed".
func TestJobStatusExposesDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	before := time.Now()
	code, body := postJSON(t, ts.URL+"/v1/jobs", SolveRequest{
		Graph: marshalGraph(t, chainGraph()), Board: "small", DeadlineMS: 30000,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit code %d\n%s", code, body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	mustUnmarshal(t, body, &sub)
	var st JobStatus
	if code := getJSON(t, ts.URL+"/v1/jobs/"+sub.ID, &st); code != http.StatusOK {
		t.Fatalf("status code %d", code)
	}
	lo := before.Add(30000 * time.Millisecond).Add(-time.Second).UnixMilli()
	hi := time.Now().Add(30000 * time.Millisecond).Add(time.Second).UnixMilli()
	if st.DeadlineUnixMS < lo || st.DeadlineUnixMS > hi {
		t.Fatalf("deadline_unix_ms = %d, want within [%d, %d]", st.DeadlineUnixMS, lo, hi)
	}
	waitState(t, ts.URL, sub.ID, JobDone, 30*time.Second)
}

// TestQueuedJobShedAfterDeadline: a job whose deadline expires while it
// waits in the queue is dropped before wasting a worker.
func TestQueuedJobShedAfterDeadline(t *testing.T) {
	release := make(chan struct{})
	shedCh := make(chan string, 1)
	sched := NewScheduler(1, 8, func(ctx context.Context, req *Request) (*Result, error) {
		<-release
		return &Result{}, nil
	})
	sched.onShed = func(jobID string) { shedCh <- jobID }

	blocker, err := sched.Submit(&Request{})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := sched.Submit(&Request{DeadlineMS: 30})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond) // let the victim's deadline lapse in queue
	close(release)

	select {
	case <-victim.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("shed job never reached a terminal state")
	}
	st := victim.Status()
	if st.State != JobFailed {
		t.Fatalf("shed job state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "shed") {
		t.Fatalf("shed job error = %q, want a shed message", st.Error)
	}
	victim.mu.Lock()
	jerr := victim.err
	victim.mu.Unlock()
	if !errors.Is(jerr, ErrDeadlineShed) {
		t.Fatalf("shed job err = %v, want ErrDeadlineShed", jerr)
	}
	select {
	case id := <-shedCh:
		if id != victim.ID {
			t.Fatalf("onShed fired for %s, want %s", id, victim.ID)
		}
	case <-time.After(time.Second):
		t.Fatal("onShed hook never fired")
	}
	<-blocker.Done()
	if s := blocker.Status().State; s != JobDone {
		t.Fatalf("blocking job state = %s, want done", s)
	}
	sched.Shutdown()
}

// TestWorkerPanicBackstop: the scheduler's recover() converts a panic in
// the solve path into JobFailed with the stack captured, and the pool keeps
// serving.
func TestWorkerPanicBackstop(t *testing.T) {
	panicCh := make(chan []byte, 1)
	sched := NewScheduler(1, 8, func(ctx context.Context, req *Request) (*Result, error) {
		if req.Engine == "boom" {
			panic("kaboom")
		}
		return &Result{Engine: req.Engine}, nil
	})
	sched.onPanic = func(jobID string, v any, stack []byte) { panicCh <- stack }
	defer sched.Shutdown()

	job, err := sched.Submit(&Request{Engine: "boom"})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("panicking job never finished")
	}
	st := job.Status()
	if st.State != JobFailed || !strings.Contains(st.Error, "worker panic") {
		t.Fatalf("panicking job = %s %q, want failed with panic message", st.State, st.Error)
	}
	select {
	case stack := <-panicCh:
		if !strings.Contains(string(stack), "goroutine") {
			t.Fatalf("captured stack looks empty: %q", stack)
		}
	case <-time.After(time.Second):
		t.Fatal("onPanic hook never fired")
	}
	// The worker that recovered is still alive and serving.
	res, err := sched.RunSync(context.Background(), &Request{Engine: "fine"})
	if err != nil || res.Engine != "fine" {
		t.Fatalf("pool dead after panic: (%+v, %v)", res, err)
	}
}

package memmap

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hls"
)

// fig6Layout builds the M1+M2+M3 block of the paper's Fig. 6.
func fig6Layout(t *testing.T) *Layout {
	t.Helper()
	l, err := NewLayout([]Segment{
		{Name: "M1", Words: 16},
		{Name: "M2", Words: 16},
		{Name: "M3", Words: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLayoutOffsets(t *testing.T) {
	l := fig6Layout(t)
	if l.BlockWords != 40 {
		t.Errorf("block = %d, want 40", l.BlockWords)
	}
	if l.RoundedWords != 64 {
		t.Errorf("rounded = %d, want 64", l.RoundedWords)
	}
	if l.Wastage() != 24 {
		t.Errorf("wastage = %d, want 24", l.Wastage())
	}
	wantOffsets := []int{0, 16, 32}
	for i, w := range wantOffsets {
		if l.Offsets[i] != w {
			t.Errorf("offset[%d] = %d, want %d", i, l.Offsets[i], w)
		}
	}
}

func TestAddressExactVsPow2(t *testing.T) {
	l := fig6Layout(t)
	// Iteration 0 addresses agree between the two schemes.
	a0, err := l.Address(0, 1, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	b0, _ := l.Address(0, 1, 5, true)
	if a0 != 21 || b0 != 21 {
		t.Errorf("iteration 0 addresses = %d/%d, want 21", a0, b0)
	}
	// Iteration 3: exact = 3*40+21 = 141; pow2 = 3*64+21 = 213.
	a3, _ := l.Address(3, 1, 5, false)
	b3, _ := l.Address(3, 1, 5, true)
	if a3 != 141 {
		t.Errorf("exact addr = %d, want 141", a3)
	}
	if b3 != 213 {
		t.Errorf("pow2 addr = %d, want 213", b3)
	}
	// The pow2 address is exactly iteration << log2(64) | offset.
	if b3 != 3<<6+21 {
		t.Errorf("pow2 addr %d is not a concatenation", b3)
	}
}

func TestAddressErrors(t *testing.T) {
	l := fig6Layout(t)
	if _, err := l.Address(0, 5, 0, false); !errors.Is(err, ErrUnknownSeg) {
		t.Errorf("bad segment: %v", err)
	}
	if _, err := l.Address(0, 0, 16, false); !errors.Is(err, ErrOutOfSegment) {
		t.Errorf("bad location: %v", err)
	}
	if _, err := l.Address(-1, 0, 0, false); err == nil {
		t.Error("negative iteration accepted")
	}
	if _, err := NewLayout(nil); !errors.Is(err, ErrEmptyLayout) {
		t.Errorf("empty layout: %v", err)
	}
	if _, err := NewLayout([]Segment{{Name: "z", Words: 0}}); err == nil {
		t.Error("zero-word segment accepted")
	}
}

func TestSegmentIndex(t *testing.T) {
	l := fig6Layout(t)
	i, err := l.SegmentIndex("M2")
	if err != nil || i != 1 {
		t.Errorf("SegmentIndex(M2) = %d, %v", i, err)
	}
	if _, err := l.SegmentIndex("M9"); !errors.Is(err, ErrUnknownSeg) {
		t.Errorf("unknown segment: %v", err)
	}
}

func TestMaxIterationsAndFit(t *testing.T) {
	l := fig6Layout(t)
	// 64K words: exact 65536/40 = 1638; pow2 65536/64 = 1024.
	if k := l.MaxIterations(65536, false); k != 1638 {
		t.Errorf("exact k = %d, want 1638", k)
	}
	if k := l.MaxIterations(65536, true); k != 1024 {
		t.Errorf("pow2 k = %d, want 1024", k)
	}
	if err := l.CheckFit(1024, 65536, true); err != nil {
		t.Error(err)
	}
	if err := l.CheckFit(1025, 65536, true); !errors.Is(err, ErrBlockOverflow) {
		t.Errorf("overflow not caught: %v", err)
	}
}

// Property: addresses never collide across (iteration, segment, location)
// triples within capacity, for either addressing scheme.
func TestAddressDisjointnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nSeg := 1 + rng.Intn(4)
		segs := make([]Segment, nSeg)
		for i := range segs {
			segs[i] = Segment{Name: string(rune('A' + i)), Words: 1 + rng.Intn(12)}
		}
		l, err := NewLayout(segs)
		if err != nil {
			return false
		}
		for _, pow2 := range []bool{false, true} {
			k := l.MaxIterations(512, pow2)
			if k > 6 {
				k = 6
			}
			seen := map[int]bool{}
			for it := 0; it < k; it++ {
				for si, s := range segs {
					for loc := 0; loc < s.Words; loc++ {
						a, err := l.Address(it, si, loc, pow2)
						if err != nil || a < 0 || seen[a] {
							return false
						}
						seen[a] = true
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPow2AddressIsConcatenation: the pow2 address equals bitwise OR of the
// shifted iteration and the in-block offset (no carries), which is what
// makes the hardware a concatenation instead of a multiplier.
func TestPow2AddressIsConcatenation(t *testing.T) {
	l := fig6Layout(t)
	for it := 0; it < 8; it++ {
		for si, s := range l.Segments {
			for loc := 0; loc < s.Words; loc++ {
				a, err := l.Address(it, si, loc, true)
				if err != nil {
					t.Fatal(err)
				}
				inBlock := l.Offsets[si] + loc
				if a != it*l.RoundedWords|inBlock {
					t.Fatalf("addr %d is not it<<log2|off (it=%d off=%d)", a, it, inBlock)
				}
			}
		}
	}
}

func TestAddressGenCosts(t *testing.T) {
	lib := hls.XC4000Library()
	mul, concat, err := AddressGenCosts(lib, 16)
	if err != nil {
		t.Fatal(err)
	}
	if mul.CLBs <= concat.CLBs {
		t.Errorf("multiplier scheme (%d CLBs) must cost more than concatenation (%d)", mul.CLBs, concat.CLBs)
	}
	if mul.DelayNS <= concat.DelayNS {
		t.Errorf("multiplier delay %.1f must exceed concatenation %.1f", mul.DelayNS, concat.DelayNS)
	}
	if _, _, err := AddressGenCosts(lib, 0); err == nil {
		t.Error("zero-width address path accepted")
	}
}

func TestRewriteAccess(t *testing.T) {
	l := fig6Layout(t)
	s, err := l.RewriteAccess("M2", 5)
	if err != nil {
		t.Fatal(err)
	}
	want := "Block[i][16 /* offset of M2 */ + 5]"
	if s != want {
		t.Errorf("rewrite = %q, want %q", s, want)
	}
	if _, err := l.RewriteAccess("M9", 0); err == nil {
		t.Error("unknown segment accepted")
	}
	if _, err := l.RewriteAccess("M3", 8); err == nil {
		t.Error("out-of-segment location accepted")
	}
}

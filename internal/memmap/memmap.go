// Package memmap implements the memory access synthesis of the paper's
// Sec. 3 (Fig. 6): all memory segments of one temporal partition are
// grouped into a Memory Block; k such blocks tile the physical on-board
// memory so that iteration i of the fissioned loop addresses block i.
//
// Address generation:
//
//	address = iteration·blockSize + segmentOffset + location
//
// With an arbitrary block size the iteration product needs a hardware
// multiplier; rounding the block size up to a power of two turns it into a
// simple concatenation of the iteration index with the in-block offset, at
// the cost of some memory wastage — the tradeoff the paper calls out.
package memmap

import (
	"errors"
	"fmt"

	"repro/internal/hls"
)

// Segment is one data flow stored in a partition's memory block (an M1, M2,
// M3 of Fig. 6).
type Segment struct {
	Name  string
	Words int
}

// Layout places segments at consecutive offsets inside one memory block.
type Layout struct {
	Segments []Segment
	// Offsets[i] is Segments[i]'s starting word within the block.
	Offsets []int
	// BlockWords is the exact block size (sum of segment sizes).
	BlockWords int
	// RoundedWords is the power-of-two rounded block size.
	RoundedWords int
}

// Errors.
var (
	ErrEmptyLayout   = errors.New("memmap: no segments")
	ErrUnknownSeg    = errors.New("memmap: unknown segment")
	ErrOutOfSegment  = errors.New("memmap: location outside segment")
	ErrBlockOverflow = errors.New("memmap: iteration exceeds capacity")
)

// NewLayout builds a block layout from segments in the given order.
func NewLayout(segments []Segment) (*Layout, error) {
	if len(segments) == 0 {
		return nil, ErrEmptyLayout
	}
	l := &Layout{Segments: segments, Offsets: make([]int, len(segments))}
	off := 0
	for i, s := range segments {
		if s.Words <= 0 {
			return nil, fmt.Errorf("memmap: segment %q has %d words", s.Name, s.Words)
		}
		l.Offsets[i] = off
		off += s.Words
	}
	l.BlockWords = off
	l.RoundedWords = NextPow2(off)
	return l, nil
}

// NextPow2 returns the smallest power of two >= n (n >= 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// SegmentIndex resolves a segment by name.
func (l *Layout) SegmentIndex(name string) (int, error) {
	for i, s := range l.Segments {
		if s.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownSeg, name)
}

// Wastage returns the words lost per block to power-of-two rounding.
func (l *Layout) Wastage() int { return l.RoundedWords - l.BlockWords }

// MaxIterations returns how many blocks fit in a memory of the given size —
// the k of Eq. 9 — under exact or power-of-two addressing.
func (l *Layout) MaxIterations(memWords int, pow2 bool) int {
	bs := l.BlockWords
	if pow2 {
		bs = l.RoundedWords
	}
	if bs == 0 {
		return 0
	}
	return memWords / bs
}

// Address computes the physical word address of (iteration, segment,
// location). With pow2 true it uses the concatenation-style address
// (iteration << log2(RoundedWords)); otherwise the exact multiply.
func (l *Layout) Address(iteration, segIdx, location int, pow2 bool) (int, error) {
	if segIdx < 0 || segIdx >= len(l.Segments) {
		return 0, fmt.Errorf("%w: index %d", ErrUnknownSeg, segIdx)
	}
	if location < 0 || location >= l.Segments[segIdx].Words {
		return 0, fmt.Errorf("%w: segment %q location %d", ErrOutOfSegment, l.Segments[segIdx].Name, location)
	}
	if iteration < 0 {
		return 0, fmt.Errorf("memmap: negative iteration %d", iteration)
	}
	base := iteration * l.BlockWords
	if pow2 {
		base = iteration * l.RoundedWords // == iteration << log2(RoundedWords)
	}
	return base + l.Offsets[segIdx] + location, nil
}

// CheckFit verifies that k iterations fit in memWords.
func (l *Layout) CheckFit(k, memWords int, pow2 bool) error {
	bs := l.BlockWords
	if pow2 {
		bs = l.RoundedWords
	}
	if k*bs > memWords {
		return fmt.Errorf("%w: %d blocks x %d words > %d", ErrBlockOverflow, k, bs, memWords)
	}
	return nil
}

// AddressGenCost models the hardware cost of the two address generation
// schemes for a given iteration-counter width, using the same component
// library as the datapath estimation. The multiply scheme needs a hardware
// multiplier (iteration × blockSize) plus an adder; the power-of-two scheme
// needs only the adder, because the product degenerates to wiring
// (concatenation).
type AddressGenCost struct {
	CLBs    int
	DelayNS float64
}

// AddressGenCosts returns (multiply-based, concatenation-based) costs for
// an address path of the given bit width.
func AddressGenCosts(lib *hls.Library, addrBits int) (mul, concat AddressGenCost, err error) {
	mulC, err := lib.Component(hls.OpMul, addrBits)
	if err != nil {
		return mul, concat, err
	}
	addC, err := lib.Component(hls.OpAdd, addrBits)
	if err != nil {
		return mul, concat, err
	}
	mul = AddressGenCost{CLBs: mulC.CLBs + addC.CLBs, DelayNS: mulC.DelayNS + addC.DelayNS}
	concat = AddressGenCost{CLBs: addC.CLBs, DelayNS: addC.DelayNS}
	return mul, concat, nil
}

// RewriteAccess renders the paper's Sec. 3 code transformation for a memory
// access: the pre-fission form "Read(M1[a])" becomes the block-indexed form
// "Read(Block[i][offset(M1) + a])".
func (l *Layout) RewriteAccess(segName string, location int) (string, error) {
	idx, err := l.SegmentIndex(segName)
	if err != nil {
		return "", err
	}
	if location < 0 || location >= l.Segments[idx].Words {
		return "", fmt.Errorf("%w: segment %q location %d", ErrOutOfSegment, segName, location)
	}
	return fmt.Sprintf("Block[i][%d /* offset of %s */ + %d]", l.Offsets[idx], segName, location), nil
}

package cosim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/jpeg"
)

func randBlocks(rng *rand.Rand, k int) []jpeg.Block {
	out := make([]jpeg.Block, k)
	for i := range out {
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				out[i][r][c] = rng.Intn(256) - 128
			}
		}
	}
	return out
}

// TestCoSimMatchesFunctionalDCT: the memory-addressed, partitioned
// execution must be bit-identical to the direct fixed-point DCT.
func TestCoSimMatchesFunctionalDCT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, pow2 := range []bool{false, true} {
		run := &DCTRun{MemWords: 64 * 1024, Pow2: pow2}
		blocks := randBlocks(rng, 64)
		got, err := run.Execute(blocks)
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range blocks {
			want := jpeg.DCTFixed(b)
			if got[i] != want {
				t.Fatalf("pow2=%v block %d:\nco-sim %v\nwant  %v", pow2, i, got[i], want)
			}
		}
	}
}

// TestFullBatch2048: a full paper-sized batch of k=2048 fits the 64K
// memory exactly and computes correctly (spot-checked).
func TestFullBatch2048(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	run := &DCTRun{MemWords: 64 * 1024}
	blocks := randBlocks(rng, 2048)
	got, err := run.Execute(blocks)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 1023, 2046, 2047} {
		if got[i] != jpeg.DCTFixed(blocks[i]) {
			t.Fatalf("block %d mismatch", i)
		}
	}
	// Host traffic matches the IDH accounting: 64 words per computation.
	if run.HostWordsMoved != 64*2048 {
		t.Errorf("host words = %d, want %d", run.HostWordsMoved, 64*2048)
	}
}

func TestBatchTooLarge(t *testing.T) {
	run := &DCTRun{MemWords: 64 * 1024}
	if _, err := run.Execute(randBlocks(rand.New(rand.NewSource(3)), 2049)); err == nil {
		t.Error("batch of 2049 accepted in 64K memory (k=2048)")
	}
}

func TestMemoryBounds(t *testing.T) {
	m := NewMemory(8)
	if err := m.Write(7, 42); err != nil {
		t.Fatal(err)
	}
	if v, err := m.Read(7); err != nil || v != 42 {
		t.Fatalf("read = %d, %v", v, err)
	}
	if _, err := m.Read(8); err == nil {
		t.Error("out-of-range read accepted")
	}
	if err := m.Write(-1, 0); err == nil {
		t.Error("negative write accepted")
	}
	if m.Reads != 1 || m.Writes != 1 {
		t.Errorf("counters = %d/%d, want 1/1", m.Reads, m.Writes)
	}
}

func TestEmptyBatch(t *testing.T) {
	run := &DCTRun{MemWords: 1024}
	got, err := run.Execute(nil)
	if err != nil || got != nil {
		t.Errorf("empty batch: %v, %v", got, err)
	}
}

// Property: co-simulation equals DCTFixed for random batch sizes and both
// addressing schemes.
func TestCoSimProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(32)
		pow2 := rng.Intn(2) == 0
		run := &DCTRun{MemWords: 4096, Pow2: pow2}
		blocks := randBlocks(rng, k)
		got, err := run.Execute(blocks)
		if err != nil {
			return false
		}
		for i, b := range blocks {
			if got[i] != jpeg.DCTFixed(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Package cosim functionally co-simulates a fissioned RTR execution of the
// DCT case study: it models the physical on-board memory as a word array,
// lays out the k iteration memory blocks exactly as internal/memmap
// prescribes (Fig. 6), and executes each temporal partition's tasks against
// that memory — T1 vector products reading X and writing Y, T2 products
// reading Y and writing Z — for a whole batch of computations.
//
// This closes the loop between the timing-level simulator (internal/sim)
// and the functional pipeline (internal/jpeg): the co-simulation must
// produce bit-identical DCT results to jpeg.DCTFixed while touching memory
// only through the block-addressed layout, proving that the memory access
// synthesis of Sec. 3 (offsets, iteration indexing, power-of-2 rounding)
// is correct, not just costed.
package cosim

import (
	"errors"
	"fmt"

	"repro/internal/jpeg"
	"repro/internal/memmap"
)

// Memory is the on-board memory: a flat word array with bounds checking
// and access counting.
type Memory struct {
	words  []int32
	Reads  int
	Writes int
}

// NewMemory allocates a memory of the given word capacity.
func NewMemory(words int) *Memory {
	return &Memory{words: make([]int32, words)}
}

// ErrAddress is returned for out-of-range accesses.
var ErrAddress = errors.New("cosim: address out of range")

// Read returns the word at addr.
func (m *Memory) Read(addr int) (int32, error) {
	if addr < 0 || addr >= len(m.words) {
		return 0, fmt.Errorf("%w: read %d of %d", ErrAddress, addr, len(m.words))
	}
	m.Reads++
	return m.words[addr], nil
}

// Write stores v at addr.
func (m *Memory) Write(addr int, v int32) error {
	if addr < 0 || addr >= len(m.words) {
		return fmt.Errorf("%w: write %d of %d", ErrAddress, addr, len(m.words))
	}
	m.Writes++
	m.words[addr] = v
	return nil
}

// DCTRun co-simulates the paper's 3-partition DCT design over a batch of
// blocks. Layouts mirror the case study's memory accounting:
//
//	partition 1 block: X (16 words in) + Y (16 words out)   = 32 words
//	partition 2 block: Yrows01 (8 in)  + Zrows01 (8 out)    = 16 words
//	partition 3 block: Yrows23 (8 in)  + Zrows23 (8 out)    = 16 words
//
// Between partitions the host shuttles the intermediate data exactly as
// the IDH sequencer does; pow2 selects power-of-two block addressing.
type DCTRun struct {
	MemWords int
	Pow2     bool
	// Stats
	HostWordsMoved int
}

// Execute runs the batch through the three partitions and returns the DCT
// of every input block.
func (r *DCTRun) Execute(blocks []jpeg.Block) ([]jpeg.Block, error) {
	k := len(blocks)
	if k == 0 {
		return nil, nil
	}
	layoutP1, err := memmap.NewLayout([]memmap.Segment{
		{Name: "X", Words: 16}, {Name: "Y", Words: 16},
	})
	if err != nil {
		return nil, err
	}
	layoutP23, err := memmap.NewLayout([]memmap.Segment{
		{Name: "Yin", Words: 8}, {Name: "Zout", Words: 8},
	})
	if err != nil {
		return nil, err
	}
	if err := layoutP1.CheckFit(k, r.MemWords, r.Pow2); err != nil {
		return nil, fmt.Errorf("cosim: batch of %d does not fit: %w", k, err)
	}

	cq := coefFixed()

	// ---- Partition 1: host loads X, FPGA computes Y = Cq·X. ----
	mem := NewMemory(r.MemWords)
	xSeg, _ := layoutP1.SegmentIndex("X")
	ySeg, _ := layoutP1.SegmentIndex("Y")
	for it, blk := range blocks {
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				addr, err := layoutP1.Address(it, xSeg, i*4+j, r.Pow2)
				if err != nil {
					return nil, err
				}
				if err := mem.Write(addr, int32(blk[i][j])); err != nil {
					return nil, err
				}
				r.HostWordsMoved++
			}
		}
	}
	// 16 T1 tasks per iteration, each reading a column of X from memory.
	for it := 0; it < k; it++ {
		for i := 0; i < 4; i++ { // Y row
			for j := 0; j < 4; j++ { // Y col
				var col [4]int
				for t := 0; t < 4; t++ {
					addr, err := layoutP1.Address(it, xSeg, t*4+j, r.Pow2)
					if err != nil {
						return nil, err
					}
					v, err := mem.Read(addr)
					if err != nil {
						return nil, err
					}
					col[t] = int(v)
				}
				y := jpeg.VectorProductT1(cq[i], col)
				addr, err := layoutP1.Address(it, ySeg, i*4+j, r.Pow2)
				if err != nil {
					return nil, err
				}
				if err := mem.Write(addr, int32(y)); err != nil {
					return nil, err
				}
			}
		}
	}
	// Host reads back the intermediate Y (IDH).
	yHost := make([][16]int32, k)
	for it := 0; it < k; it++ {
		for w := 0; w < 16; w++ {
			addr, err := layoutP1.Address(it, ySeg, w, r.Pow2)
			if err != nil {
				return nil, err
			}
			v, err := mem.Read(addr)
			if err != nil {
				return nil, err
			}
			yHost[it][w] = v
			r.HostWordsMoved++
		}
	}

	// ---- Partitions 2 and 3: reconfigure (fresh memory), compute Z rows. ----
	out := make([]jpeg.Block, k)
	for part := 0; part < 2; part++ { // partition 2 handles rows 0-1; partition 3 rows 2-3
		mem = NewMemory(r.MemWords) // reconfiguration wipes the working set
		yinSeg, _ := layoutP23.SegmentIndex("Yin")
		zSeg, _ := layoutP23.SegmentIndex("Zout")
		rowBase := 2 * part
		// Host loads this partition's Y rows.
		for it := 0; it < k; it++ {
			for rI := 0; rI < 2; rI++ {
				for j := 0; j < 4; j++ {
					addr, err := layoutP23.Address(it, yinSeg, rI*4+j, r.Pow2)
					if err != nil {
						return nil, err
					}
					if err := mem.Write(addr, yHost[it][(rowBase+rI)*4+j]); err != nil {
						return nil, err
					}
					r.HostWordsMoved++
				}
			}
		}
		// 8 T2 tasks per iteration.
		for it := 0; it < k; it++ {
			for rI := 0; rI < 2; rI++ {
				var yRow [4]int
				for j := 0; j < 4; j++ {
					addr, err := layoutP23.Address(it, yinSeg, rI*4+j, r.Pow2)
					if err != nil {
						return nil, err
					}
					v, err := mem.Read(addr)
					if err != nil {
						return nil, err
					}
					yRow[j] = int(v)
				}
				for j := 0; j < 4; j++ {
					z := jpeg.VectorProductT2(yRow, cq[j])
					addr, err := layoutP23.Address(it, zSeg, rI*4+j, r.Pow2)
					if err != nil {
						return nil, err
					}
					if err := mem.Write(addr, int32(z)); err != nil {
						return nil, err
					}
				}
			}
		}
		// Host reads the outputs.
		for it := 0; it < k; it++ {
			for rI := 0; rI < 2; rI++ {
				for j := 0; j < 4; j++ {
					addr, err := layoutP23.Address(it, zSeg, rI*4+j, r.Pow2)
					if err != nil {
						return nil, err
					}
					v, err := mem.Read(addr)
					if err != nil {
						return nil, err
					}
					out[it][rowBase+rI][j] = int(v)
					r.HostWordsMoved++
				}
			}
		}
	}
	return out, nil
}

// coefFixed mirrors jpeg's fixed-point coefficient matrix through the
// exported VectorProduct functions' contract (Q6 coefficients).
func coefFixed() [4][4]int {
	return jpeg.CoefFixed()
}

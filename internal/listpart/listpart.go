// Package listpart implements the baseline list-based temporal partitioner
// the paper compares against (Sec. 4): tasks are visited in topological
// order and greedily packed into the current partition while the FPGA
// resource constraint allows, opening a new partition otherwise.
//
// On the DCT case study this packs T2 tasks into partition 1's unused CLBs,
// which lengthens partition 1's critical path and produces a worse overall
// latency than the ILP — exactly the effect the paper describes.
package listpart

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/dfg"
	"repro/internal/tempart"
)

// Solve greedily partitions the task graph and evaluates the latency using
// the same path-based delay model as the ILP (Fig. 4).
func Solve(g *dfg.Graph, board arch.Board, pathCap int) (*tempart.Partitioning, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := board.Validate(); err != nil {
		return nil, err
	}
	if g.NumTasks() == 0 {
		return &tempart.Partitioning{}, nil
	}
	if pathCap == 0 {
		pathCap = 20000
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	assign := make([]int, g.NumTasks())
	cur, used := 0, 0
	usedExtra := map[string]int{}
	for _, t := range order {
		task := g.Task(t)
		if task.Resources > board.FPGA.CLBs {
			return nil, fmt.Errorf("listpart: task %q needs %d CLBs, FPGA has %d",
				task.Name, task.Resources, board.FPGA.CLBs)
		}
		for kind, cap := range board.FPGA.ExtraCapacity {
			if task.Extra[kind] > cap {
				return nil, fmt.Errorf("listpart: task %q needs %d %s, FPGA has %d",
					task.Name, task.Extra[kind], kind, cap)
			}
		}
		fits := used+task.Resources <= board.FPGA.CLBs
		for kind, cap := range board.FPGA.ExtraCapacity {
			if usedExtra[kind]+task.Extra[kind] > cap {
				fits = false
			}
		}
		if !fits {
			cur++
			used = 0
			usedExtra = map[string]int{}
		}
		assign[t] = cur
		used += task.Resources
		for kind, d := range task.Extra {
			usedExtra[kind] += d
		}
	}
	n := cur + 1
	if err := tempart.CheckFeasible(g, board, assign, n); err != nil {
		return nil, fmt.Errorf("listpart: greedy result infeasible: %w", err)
	}
	paths, err := g.Paths(pathCap)
	if err != nil {
		return nil, err
	}
	delays := tempart.EvaluateDelays(g, assign, n, paths)
	return &tempart.Partitioning{
		N:       n,
		Assign:  assign,
		Delays:  delays,
		Latency: tempart.Latency(board, delays),
		Optimal: false,
		Stats:   tempart.SolveStats{N: n, Paths: len(paths)},
	}, nil
}

package listpart

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/dfg"
	"repro/internal/hls"
	"repro/internal/jpeg"
	"repro/internal/tempart"
)

func TestGreedyChain(t *testing.T) {
	g := dfg.New("chain")
	names := []string{"a", "b", "c", "d"}
	for _, n := range names {
		g.MustAddTask(dfg.Task{Name: n, Resources: 30, Delay: 100})
	}
	for i := 0; i+1 < len(names); i++ {
		g.MustAddEdge(names[i], names[i+1], 1)
	}
	b := arch.SmallTestBoard() // 100 CLBs
	p, err := Solve(g, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy packs a,b,c (90 CLBs) then d.
	if p.N != 2 {
		t.Fatalf("N = %d, want 2", p.N)
	}
	want := []int{0, 0, 0, 1}
	for i, w := range want {
		if p.Assign[i] != w {
			t.Errorf("assign[%d] = %d, want %d", i, p.Assign[i], w)
		}
	}
	if err := tempart.CheckFeasible(g, b, p.Assign, p.N); err != nil {
		t.Error(err)
	}
	if p.Latency != 2*b.FPGA.ReconfigTime+300+100 {
		t.Errorf("latency = %g", p.Latency)
	}
}

// TestGreedyMixesTypesOnDCT reproduces the paper's observation: the list
// partitioner places T2 tasks into partition 1 because it has unused CLBs
// (1600 - 16*70 = 480 fits two 180-CLB T2 tasks).
func TestGreedyMixesTypesOnDCT(t *testing.T) {
	g, err := jpeg.BuildDCTGraph(hls.XC4000Library(), hls.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	board := arch.PaperXC4044Board()
	p, err := Solve(g, board, 0)
	if err != nil {
		t.Fatal(err)
	}
	t2InP0 := 0
	for ti := 0; ti < g.NumTasks(); ti++ {
		if g.Task(ti).Type == "T2" && p.Assign[ti] == 0 {
			t2InP0++
		}
	}
	if t2InP0 == 0 {
		t.Error("expected T2 tasks packed into partition 1")
	}
	// Partition 1's delay therefore includes a T1+T2 path (350+490).
	if p.Delays[0] < 840 {
		t.Errorf("partition 1 delay = %g, want >= 840 (T1+T2 path)", p.Delays[0])
	}
}

func TestErrors(t *testing.T) {
	g := dfg.New("big")
	g.MustAddTask(dfg.Task{Name: "x", Resources: 10000})
	if _, err := Solve(g, arch.SmallTestBoard(), 0); err == nil {
		t.Error("oversized task accepted")
	}
	cyc := dfg.New("cyc")
	cyc.MustAddTask(dfg.Task{Name: "a"})
	cyc.MustAddTask(dfg.Task{Name: "b"})
	cyc.MustAddEdge("a", "b", 1)
	cyc.MustAddEdge("b", "a", 1)
	if _, err := Solve(cyc, arch.SmallTestBoard(), 0); err == nil {
		t.Error("cyclic graph accepted")
	}
}

func TestEmpty(t *testing.T) {
	p, err := Solve(dfg.New("empty"), arch.SmallTestBoard(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 0 {
		t.Errorf("N = %d, want 0", p.N)
	}
}

package rtl

import (
	"testing"

	"repro/internal/hls"
)

func TestInterconnectSingleTask(t *testing.T) {
	pd := partitionDesign(t, 1)
	n, err := FromPartition("p", pd, hls.XC4000Library(), true)
	if err != nil {
		t.Fatal(err)
	}
	st, err := n.Interconnect(pd)
	if err != nil {
		t.Fatal(err)
	}
	// One shared multiplier serves 4 muls whose operands live in shared
	// registers, and one adder serves 3 adds: fan-in > 1 somewhere.
	if st.MuxInputs == 0 || st.MuxCLBs == 0 {
		t.Errorf("no interconnect found: %+v", st)
	}
	for _, f := range st.PortFanIns {
		if f < 2 {
			t.Errorf("port fan-in %d should be >= 2", f)
		}
	}
}

func TestInterconnectGrowsWithSharing(t *testing.T) {
	// More tasks sharing one memory write port -> wider write mux.
	pd1 := partitionDesign(t, 1)
	n1, _ := FromPartition("p1", pd1, hls.XC4000Library(), true)
	s1, err := n1.Interconnect(pd1)
	if err != nil {
		t.Fatal(err)
	}
	pd4 := partitionDesign(t, 4)
	n4, _ := FromPartition("p4", pd4, hls.XC4000Library(), true)
	s4, err := n4.Interconnect(pd4)
	if err != nil {
		t.Fatal(err)
	}
	if s4.MuxCLBs <= s1.MuxCLBs {
		t.Errorf("4-task interconnect (%d CLBs) should exceed 1-task (%d)", s4.MuxCLBs, s1.MuxCLBs)
	}
}

func TestMuxCLBs(t *testing.T) {
	if muxCLBs(16, 1) != 0 {
		t.Error("single-source port needs no mux")
	}
	if muxCLBs(16, 2) != 4 { // 16 bits x 1 stage / 4
		t.Errorf("muxCLBs(16,2) = %d, want 4", muxCLBs(16, 2))
	}
	if muxCLBs(16, 5) != 16 {
		t.Errorf("muxCLBs(16,5) = %d, want 16", muxCLBs(16, 5))
	}
}

package rtl

import (
	"fmt"

	"repro/internal/hls"
)

// Interconnect estimation: once operations are bound to functional units
// and values to shared registers, each FU input port needs a multiplexer
// selecting among the registers that feed it over time, and the memory
// write port needs one selecting among stored values. Mux area is the
// second-order term the paper's floorplanning-based estimator absorbs into
// its margins; this makes it explicit so the area refinement can be
// studied (DESIGN.md section 5 ablations).

// InterconnectStats summarizes the steering logic of a netlist.
type InterconnectStats struct {
	// MuxInputs is the total number of mux data inputs across all FU
	// ports and the memory write port (an m-input port contributes m when
	// m > 1).
	MuxInputs int
	// MuxCLBs is the estimated CLB cost of all muxes.
	MuxCLBs int
	// PortFanIns lists the fan-in of every multiplexed port (diagnostic).
	PortFanIns []int
}

// muxCLBs estimates an m-to-1, w-bit multiplexer on an XC4000-class
// device: (m-1) two-to-one stages, two bits per CLB.
func muxCLBs(w, m int) int {
	if m <= 1 {
		return 0
	}
	return (w*(m-1) + 3) / 4
}

// Interconnect computes mux statistics for the netlist against its source
// partition design. The register binding is reconstructed from the
// netlist's Registers (built by FromPartition).
func (n *Netlist) Interconnect(pd *hls.PartitionDesign) (InterconnectStats, error) {
	regOf := map[hls.OpRef]int{}
	for r, reg := range n.Registers {
		for _, v := range reg.Values {
			regOf[v] = r
		}
	}
	// resolve maps an op argument to the register(s) backing it, folding
	// through free ops (consts resolve to no register: they are ROM/wiring
	// inputs that do not add mux data inputs from the register file).
	var resolve func(task, op int, into map[int]bool) error
	resolve = func(task, op int, into map[int]bool) error {
		o := pd.Tasks[task].Op(op)
		if o.Kind == hls.OpConst {
			return nil
		}
		if o.Kind.IsFree() {
			for _, a := range o.Args {
				if err := resolve(task, a, into); err != nil {
					return err
				}
			}
			return nil
		}
		r, ok := regOf[hls.OpRef{Task: task, Op: op}]
		if !ok {
			return fmt.Errorf("rtl: value (%d,%d) has no register", task, op)
		}
		into[r] = true
		return nil
	}

	var stats InterconnectStats
	addPort := func(width int, sources map[int]bool) {
		m := len(sources)
		if m <= 1 {
			return
		}
		stats.MuxInputs += m
		stats.MuxCLBs += muxCLBs(width, m)
		stats.PortFanIns = append(stats.PortFanIns, m)
	}

	// FU input ports: one mux per argument position of each instance.
	for _, fu := range n.FUs {
		maxArgs := 0
		for _, b := range fu.Ops {
			if na := len(pd.Tasks[b.Task].Op(b.Op).Args); na > maxArgs {
				maxArgs = na
			}
		}
		for port := 0; port < maxArgs; port++ {
			sources := map[int]bool{}
			for _, b := range fu.Ops {
				op := pd.Tasks[b.Task].Op(b.Op)
				if port >= len(op.Args) {
					continue
				}
				if err := resolve(b.Task, op.Args[port], sources); err != nil {
					return stats, err
				}
			}
			addPort(fu.Component.Width, sources)
		}
	}

	// Memory write port: all written values steer into one data port.
	wSources := map[int]bool{}
	wWidth := 0
	for ti, g := range pd.Tasks {
		for i := 0; i < g.NumOps(); i++ {
			op := g.Op(i)
			if op.Kind != hls.OpWrite {
				continue
			}
			if op.Width > wWidth {
				wWidth = op.Width
			}
			for _, a := range op.Args {
				if err := resolve(ti, a, wSources); err != nil {
					return stats, err
				}
			}
		}
	}
	if wWidth == 0 {
		wWidth = 16
	}
	addPort(wWidth, wSources)
	return stats, nil
}

// Package rtl renders synthesized partition designs as register-transfer
// level netlists: functional-unit instances, result registers, input
// multiplexers, a memory port arbiter, and the controller FSM (including
// the Fig. 7 iteration counter for RTR partitions). The output is a
// Verilog-2001 style module — the artifact the paper hands to
// logic/layout synthesis (Synplify + Xilinx M1).
package rtl

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/hls"
)

// Netlist is a structural RTL design.
type Netlist struct {
	Name string
	// FUs are the datapath functional-unit instances.
	FUs []FUInstance
	// Registers hold scheduled op results.
	Registers []Register
	// Controller is the FSM (nil for combinational stubs).
	Controller *hls.FSM
	// Cycles is the schedule makespan (body states in the controller).
	Cycles int
	// MemPorts is the number of memory ports arbitrated.
	MemPorts int
}

// FUInstance is one functional unit in the datapath.
type FUInstance struct {
	Name      string
	Component hls.Component
	Task      int
	// Ops lists (op index, cycle) pairs served by this unit.
	Ops []BoundOp
}

// BoundOp records one operation bound to a unit and cycle.
type BoundOp struct {
	Task, Op, Cycle int
}

// Register is one physical register produced by the left-edge binding;
// Values lists the scheduled op results it carries over time.
type Register struct {
	Name   string
	Width  int
	Values []hls.OpRef
}

// FromPartition builds the netlist for a synthesized partition: operations
// are bound to concrete FU instances round-robin within their type (the
// schedule guarantees per-cycle capacity), values share physical registers
// via the left-edge binding (hls.BindRegisters), and the controller is the
// linear schedule FSM, augmented with the iteration counter when rtr is
// true.
func FromPartition(name string, pd *hls.PartitionDesign, lib *hls.Library, rtr bool) (*Netlist, error) {
	n := &Netlist{Name: name, Cycles: pd.Schedule.Cycles, MemPorts: 1}

	// Instantiate FUs per task allocation.
	type fuKey struct {
		task int
		ft   hls.FUType
	}
	fuIndex := map[fuKey][]int{} // -> indices into n.FUs
	for ti, alloc := range pd.Allocs {
		fts := make([]hls.FUType, 0, len(alloc))
		for ft := range alloc {
			fts = append(fts, ft)
		}
		sort.Slice(fts, func(a, b int) bool {
			if fts[a].Kind != fts[b].Kind {
				return fts[a].Kind < fts[b].Kind
			}
			return fts[a].Width < fts[b].Width
		})
		for _, ft := range fts {
			for c := 0; c < alloc[ft]; c++ {
				comp, err := lib.Component(ft.Kind, ft.Width)
				if err != nil {
					return nil, err
				}
				idx := len(n.FUs)
				n.FUs = append(n.FUs, FUInstance{
					Name:      fmt.Sprintf("u_t%d_%s_%d", ti, comp.Name, c),
					Component: comp,
					Task:      ti,
				})
				fuIndex[fuKey{ti, ft}] = append(fuIndex[fuKey{ti, ft}], idx)
			}
		}
	}

	// Bind scheduled ops to instances: per (task, type, cycle) round-robin.
	busy := map[string]int{} // "task/ft/cycle" -> next instance ordinal
	for _, so := range pd.Schedule.Ops {
		op := pd.Tasks[so.Task].Op(so.Op)
		if op.Kind.NeedsFU() {
			ft := hls.FUType{Kind: op.Kind, Width: op.Width}
			key := fmt.Sprintf("%d/%s/%d", so.Task, ft, so.Cycle)
			insts := fuIndex[fuKey{so.Task, ft}]
			ord := busy[key]
			if ord >= len(insts) {
				return nil, fmt.Errorf("rtl: cycle %d oversubscribes %s of task %d", so.Cycle, ft, so.Task)
			}
			busy[key] = ord + 1
			fi := insts[ord]
			n.FUs[fi].Ops = append(n.FUs[fi].Ops, BoundOp{so.Task, so.Op, so.Cycle})
		}
	}

	// Shared registers from the left-edge binding.
	rb, err := hls.BindRegisters(pd.Tasks, pd.Schedule, lib)
	if err != nil {
		return nil, err
	}
	if err := rb.Verify(); err != nil {
		return nil, err
	}
	n.Registers = make([]Register, rb.NumRegisters())
	for r := range n.Registers {
		n.Registers[r] = Register{Name: fmt.Sprintf("r%d", r), Width: rb.Widths[r]}
	}
	for ref, r := range rb.Assign {
		n.Registers[r].Values = append(n.Registers[r].Values, ref)
	}
	for r := range n.Registers {
		sort.Slice(n.Registers[r].Values, func(a, b int) bool {
			va, vb := n.Registers[r].Values[a], n.Registers[r].Values[b]
			if va.Task != vb.Task {
				return va.Task < vb.Task
			}
			return va.Op < vb.Op
		})
	}

	ctl := hls.SynthesizeController(name, pd.Schedule)
	if rtr {
		ctl = hls.AugmentForRTR(ctl)
	}
	n.Controller = ctl
	return n, nil
}

// Check verifies structural invariants: unique instance and register
// names, and every bound op within the schedule horizon.
func (n *Netlist) Check() error {
	seen := map[string]bool{}
	for _, fu := range n.FUs {
		if seen[fu.Name] {
			return fmt.Errorf("rtl: duplicate instance %q", fu.Name)
		}
		seen[fu.Name] = true
		for _, b := range fu.Ops {
			if b.Cycle < 0 || b.Cycle >= n.Cycles {
				return fmt.Errorf("rtl: %q op bound outside schedule (cycle %d of %d)", fu.Name, b.Cycle, n.Cycles)
			}
		}
	}
	for _, r := range n.Registers {
		if seen[r.Name] {
			return fmt.Errorf("rtl: duplicate register %q", r.Name)
		}
		seen[r.Name] = true
		if r.Width <= 0 {
			return fmt.Errorf("rtl: register %q has width %d", r.Name, r.Width)
		}
	}
	return nil
}

// Verilog renders the netlist as a synthesizable-style Verilog module.
func (n *Netlist) Verilog() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// Generated by repro/internal/rtl — %d FUs, %d registers, %d states\n",
		len(n.FUs), len(n.Registers), n.Controller.NumStates())
	fmt.Fprintf(&b, "module %s (\n", sanitize(n.Name))
	b.WriteString("    input  wire        clk,\n")
	b.WriteString("    input  wire        rst_n,\n")
	b.WriteString("    input  wire        start,\n")
	b.WriteString("    output reg         finish,\n")
	b.WriteString("    output reg  [15:0] mem_addr,\n")
	b.WriteString("    input  wire [31:0] mem_rdata,\n")
	b.WriteString("    output reg  [31:0] mem_wdata,\n")
	b.WriteString("    output reg         mem_we\n")
	b.WriteString(");\n\n")

	nStates := n.Controller.NumStates()
	sw := 1
	for 1<<sw < nStates {
		sw++
	}
	fmt.Fprintf(&b, "    // Controller: %d states\n", nStates)
	fmt.Fprintf(&b, "    reg [%d:0] state;\n", sw-1)
	for i, s := range n.Controller.States {
		fmt.Fprintf(&b, "    localparam %s = %d'd%d;\n", sanitize(strings.ToUpper(s.Name)), sw, i)
	}
	if n.Controller.HasIterationCounter {
		b.WriteString("\n    // Loop fission iteration counter (Fig. 7)\n")
		b.WriteString("    reg [15:0] iter_count;\n")
		b.WriteString("    reg [15:0] k_reg;\n")
	}

	b.WriteString("\n    // Shared result registers (left-edge binding)\n")
	for _, r := range n.Registers {
		fmt.Fprintf(&b, "    reg [%d:0] %s; // carries %d values\n",
			r.Width-1, sanitize(r.Name), len(r.Values))
	}

	b.WriteString("\n    // Functional units\n")
	for _, fu := range n.FUs {
		fmt.Fprintf(&b, "    // %s: %s (%d CLBs, %.1f ns), serves %d ops\n",
			sanitize(fu.Name), fu.Component.Name, fu.Component.CLBs, fu.Component.DelayNS, len(fu.Ops))
		fmt.Fprintf(&b, "    wire [%d:0] %s_y;\n", fu.Component.Width*2-1, sanitize(fu.Name))
	}

	b.WriteString("\n    always @(posedge clk or negedge rst_n) begin\n")
	b.WriteString("        if (!rst_n) begin\n")
	fmt.Fprintf(&b, "            state  <= %s;\n", sanitize(strings.ToUpper(n.Controller.States[n.Controller.Start].Name)))
	b.WriteString("            finish <= 1'b0;\n")
	b.WriteString("        end else begin\n")
	b.WriteString("            case (state)\n")
	for _, s := range n.Controller.States {
		name := sanitize(strings.ToUpper(s.Name))
		switch s.Kind {
		case hls.StateStart:
			fmt.Fprintf(&b, "            %s: begin\n", name)
			b.WriteString("                finish <= 1'b0;\n")
			if n.Controller.HasIterationCounter {
				b.WriteString("                iter_count <= 16'd0;\n")
			}
			fmt.Fprintf(&b, "                if (start) state <= %s;\n",
				sanitize(strings.ToUpper(n.Controller.States[s.Next].Name)))
			b.WriteString("            end\n")
		case hls.StateBody:
			fmt.Fprintf(&b, "            %s: state <= %s; // control step %d\n",
				name, sanitize(strings.ToUpper(n.Controller.States[s.Next].Name)), s.Step)
		case hls.StateCheck:
			fmt.Fprintf(&b, "            %s: begin\n", name)
			b.WriteString("                iter_count <= iter_count + 16'd1;\n")
			fmt.Fprintf(&b, "                if (iter_count + 16'd1 < k_reg) state <= %s;\n",
				sanitize(strings.ToUpper(n.Controller.States[s.Next].Name)))
			fmt.Fprintf(&b, "                else state <= %s;\n",
				sanitize(strings.ToUpper(n.Controller.States[s.Alt].Name)))
			b.WriteString("            end\n")
		case hls.StateFinish:
			fmt.Fprintf(&b, "            %s: begin\n", name)
			b.WriteString("                finish <= 1'b1;\n")
			fmt.Fprintf(&b, "                state  <= %s;\n",
				sanitize(strings.ToUpper(n.Controller.States[s.Next].Name)))
			b.WriteString("            end\n")
		}
	}
	b.WriteString("            endcase\n")
	b.WriteString("        end\n")
	b.WriteString("    end\n\n")
	b.WriteString("endmodule\n")
	return b.String()
}

// sanitize maps arbitrary names to Verilog identifiers.
func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	out := b.String()
	if out == "" {
		return "m"
	}
	if out[0] >= '0' && out[0] <= '9' {
		return "m" + out
	}
	return out
}

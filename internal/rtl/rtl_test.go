package rtl

import (
	"strings"
	"testing"

	"repro/internal/hls"
)

func partitionDesign(t *testing.T, nTasks int) *hls.PartitionDesign {
	t.Helper()
	lib := hls.XC4000Library()
	var tasks []*hls.OpGraph
	for i := 0; i < nTasks; i++ {
		tasks = append(tasks, hls.VectorProduct("vp", 4, 9, 16, "in", "out", false))
	}
	pd, err := hls.SynthesizePartition(tasks, lib, hls.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	return pd
}

func TestFromPartitionStructure(t *testing.T) {
	pd := partitionDesign(t, 2)
	n, err := FromPartition("p1", pd, hls.XC4000Library(), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	// 2 tasks x (1 mul9 + 1 add16) = 4 FU instances.
	if len(n.FUs) != 4 {
		t.Errorf("FUs = %d, want 4", len(n.FUs))
	}
	// Left-edge binding shares registers: strictly fewer than the 22
	// values (2 tasks x 11), but at least a handful for the live window.
	if len(n.Registers) >= 22 || len(n.Registers) < 2 {
		t.Errorf("registers = %d, want shared (2..21)", len(n.Registers))
	}
	vals := 0
	for _, r := range n.Registers {
		vals += len(r.Values)
	}
	if vals != 22 {
		t.Errorf("bound values = %d, want 22", vals)
	}
	if !n.Controller.HasIterationCounter {
		t.Error("RTR netlist must carry the iteration counter")
	}
	// All FU ops bound within the schedule.
	bound := 0
	for _, fu := range n.FUs {
		bound += len(fu.Ops)
	}
	if bound != 14 { // 2 tasks x (4 muls + 3 adds)
		t.Errorf("bound ops = %d, want 14", bound)
	}
}

func TestVerilogEmission(t *testing.T) {
	pd := partitionDesign(t, 1)
	n, err := FromPartition("dct_p1", pd, hls.XC4000Library(), true)
	if err != nil {
		t.Fatal(err)
	}
	v := n.Verilog()
	for _, want := range []string{
		"module dct_p1",
		"input  wire        start",
		"output reg         finish",
		"iter_count",
		"k_reg",
		"S_CHECK",
		"S_FINISH",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("Verilog missing %q", want)
		}
	}
	// Deterministic output.
	if v != n.Verilog() {
		t.Error("emission is not deterministic")
	}
}

func TestPlainControllerEmission(t *testing.T) {
	pd := partitionDesign(t, 1)
	n, err := FromPartition("static_dct", pd, hls.XC4000Library(), false)
	if err != nil {
		t.Fatal(err)
	}
	v := n.Verilog()
	if strings.Contains(v, "iter_count") {
		t.Error("non-RTR netlist must not carry the iteration counter")
	}
	if !strings.Contains(v, "module static_dct") {
		t.Error("module name missing")
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"ok_name":  "ok_name",
		"9lives":   "m9lives",
		"a-b.c":    "a_b_c",
		"":         "m",
		"T1_00":    "T1_00",
		"mul9 (x)": "mul9__x_",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCheckCatchesDuplicates(t *testing.T) {
	n := &Netlist{
		Name:   "bad",
		Cycles: 1,
		FUs: []FUInstance{
			{Name: "u"}, {Name: "u"},
		},
	}
	if err := n.Check(); err == nil {
		t.Error("duplicate FU names accepted")
	}
	n2 := &Netlist{
		Name:      "bad2",
		Cycles:    1,
		Registers: []Register{{Name: "r", Width: 0}},
	}
	if err := n2.Check(); err == nil {
		t.Error("zero-width register accepted")
	}
	n3 := &Netlist{
		Name:   "bad3",
		Cycles: 2,
		FUs:    []FUInstance{{Name: "u", Ops: []BoundOp{{Cycle: 5}}}},
	}
	if err := n3.Check(); err == nil {
		t.Error("out-of-horizon binding accepted")
	}
}

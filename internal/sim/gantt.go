package sim

import (
	"fmt"
	"strings"
)

// Gantt renders the first events of a trace as a proportional text chart,
// one row per event kind, for quick visual inspection of a schedule
// (cmd/sparcs -trace prints the tabular form; this is the overview).
func (r *Result) Gantt(width, maxEvents int) string {
	if width < 20 {
		width = 20
	}
	evs := r.Trace.Events
	if maxEvents > 0 && len(evs) > maxEvents {
		evs = evs[:maxEvents]
	}
	if len(evs) == 0 {
		return "(no events)\n"
	}
	span := evs[len(evs)-1].EndNS - evs[0].StartNS
	if span <= 0 {
		span = 1
	}
	t0 := evs[0].StartNS
	kinds := []EventKind{EvReconfig, EvTransferIn, EvTransferOut, EvStart, EvCompute, EvFinish}
	glyph := map[EventKind]byte{
		EvReconfig: 'R', EvTransferIn: '<', EvTransferOut: '>',
		EvStart: 's', EvCompute: '#', EvFinish: 'f',
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events over %.3f ms (1 col = %.3f ms)\n",
		len(evs), span/1e6, span/float64(width)/1e6)
	for _, k := range kinds {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		used := false
		for _, ev := range evs {
			if ev.Kind != k {
				continue
			}
			used = true
			lo := int((ev.StartNS - t0) / span * float64(width))
			hi := int((ev.EndNS - t0) / span * float64(width))
			if lo >= width {
				lo = width - 1
			}
			if hi >= width {
				hi = width - 1
			}
			for c := lo; c <= hi; c++ {
				row[c] = glyph[k]
			}
		}
		if used {
			fmt.Fprintf(&b, "%-9s %s\n", k, row)
		}
	}
	return b.String()
}

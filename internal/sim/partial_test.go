package sim

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/fission"
)

// TestPartialReconfiguration: on an XC6200-style device, loading a
// partition that uses 1120 of 1600 CLBs costs 70% of the full
// reconfiguration time.
func TestPartialReconfiguration(t *testing.T) {
	rtr, _, _ := dctDesigns(t)
	rtr.PartitionCLBs = []int{1120, 1440, 1440}
	full := arch.XC6000Board()
	partial := arch.XC6000PartialBoard()

	rFull, err := SimulateRTR(rtr, full, fission.IDH, 2048, Options{TraceCap: -1})
	if err != nil {
		t.Fatal(err)
	}
	rPart, err := SimulateRTR(rtr, partial, fission.IDH, 2048, Options{TraceCap: -1})
	if err != nil {
		t.Fatal(err)
	}
	wantRatio := float64(1120+1440+1440) / float64(3*1600)
	gotRatio := rPart.ReconfigNS / rFull.ReconfigNS
	if diff := gotRatio - wantRatio; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("partial reconfig ratio = %.4f, want %.4f", gotRatio, wantRatio)
	}
	if rPart.TotalNS >= rFull.TotalNS {
		t.Error("partial reconfiguration should reduce total time")
	}
	// Compute and transfer are untouched.
	if rPart.ComputeNS != rFull.ComputeNS || rPart.TransferNS != rFull.TransferNS {
		t.Error("partial reconfiguration must only affect configuration loads")
	}
}

// TestPartialReconfigIgnoredWithoutCLBs: a design without PartitionCLBs
// falls back to full reconfiguration even on a partial-reconfig board.
func TestPartialReconfigIgnoredWithoutCLBs(t *testing.T) {
	rtr, _, _ := dctDesigns(t)
	rtr.PartitionCLBs = nil
	full := arch.XC6000Board()
	partial := arch.XC6000PartialBoard()
	a, _ := SimulateRTR(rtr, full, fission.IDH, 2048, Options{TraceCap: -1})
	b, _ := SimulateRTR(rtr, partial, fission.IDH, 2048, Options{TraceCap: -1})
	if a.ReconfigNS != b.ReconfigNS {
		t.Errorf("reconfig %g vs %g, want equal without CLB data", a.ReconfigNS, b.ReconfigNS)
	}
}

package sim

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/fission"
)

func TestComposeCoDesign(t *testing.T) {
	board := &Result{TotalNS: 1000}
	serial := ComposeCoDesign(board, HostStages{PerComputationNS: 10}, 50)
	if serial.TotalNS != 1500 {
		t.Errorf("serial total = %g, want 1500", serial.TotalNS)
	}
	over := ComposeCoDesign(board, HostStages{PerComputationNS: 10, Overlapped: true}, 50)
	if over.TotalNS != 1000 {
		t.Errorf("overlapped total = %g, want max(1000,500)=1000", over.TotalNS)
	}
	overHostBound := ComposeCoDesign(board, HostStages{PerComputationNS: 100, Overlapped: true}, 50)
	if overHostBound.TotalNS != 5000 {
		t.Errorf("host-bound total = %g, want 5000", overHostBound.TotalNS)
	}
}

func TestOverlappedNeverSlower(t *testing.T) {
	rtr, _, board := dctDesigns(t)
	rb := RTRBoard{
		ReconfigNS: board.FPGA.ReconfigTime + board.Link.ConfigLoadNS,
		WordNS:     board.Link.WordTransferNS,
		StartNS:    board.Link.StartSignalNS,
		FinishNS:   board.Link.FinishSignalNS,
	}
	// IDH: double buffering hides DMA behind compute and must win or tie
	// (reconfigurations stay at N regardless of the halved k).
	for _, I := range []int{2048, 50000, 245760} {
		seq := AnalyticRTR(rtr, board, fission.IDH, I, false)
		over, err := AnalyticRTROverlapped(rtr, rb, fission.IDH, I)
		if err != nil {
			t.Fatal(err)
		}
		if over > seq*1.01 {
			t.Errorf("IDH I=%d: overlapped %.0f slower than sequential %.0f", I, over, seq)
		}
	}
	// At the largest size the overlap must strictly win (it hides ~0.47 s
	// of DMA behind ~2.4 s of compute).
	seq := AnalyticRTR(rtr, board, fission.IDH, 245760, false)
	over, _ := AnalyticRTROverlapped(rtr, rb, fission.IDH, 245760)
	if over >= seq {
		t.Errorf("IDH overlapped %.0f >= sequential %.0f", over, seq)
	}
	// FDH: halving k doubles the batch count and therefore the number of
	// reconfigurations — double buffering actively hurts. This is part of
	// the ablation's finding, so pin it.
	seqF := AnalyticRTR(rtr, board, fission.FDH, 245760, false)
	overF, err := AnalyticRTROverlapped(rtr, rb, fission.FDH, 245760)
	if err != nil {
		t.Fatal(err)
	}
	if overF <= seqF {
		t.Errorf("FDH overlapped %.0f should lose to sequential %.0f (2x reconfigurations)", overF, seqF)
	}
}

func TestOverlappedErrors(t *testing.T) {
	rtr, _, _ := dctDesigns(t)
	rb := RTRBoard{ReconfigNS: 1}
	if _, err := AnalyticRTROverlapped(rtr, rb, fission.IDH, 0); err == nil {
		t.Error("I=0 accepted")
	}
	if _, err := AnalyticRTROverlapped(RTRDesign{}, rb, fission.IDH, 10); err == nil {
		t.Error("empty design accepted")
	}
	if _, err := AnalyticRTROverlapped(rtr, rb, fission.Strategy(9), 10); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestXC4044BoardToRTRBoard(t *testing.T) {
	b := arch.PaperXC4044Board()
	rb := RTRBoard{
		ReconfigNS: b.FPGA.ReconfigTime,
		WordNS:     b.Link.WordTransferNS,
	}
	if rb.ReconfigNS != 100*arch.Millisecond || rb.WordNS != 30 {
		t.Errorf("board mapping wrong: %+v", rb)
	}
}

package sim

import (
	"errors"
	"math"

	"repro/internal/fission"
)

// Co-design composition (Sec. 4): the DCT subtask runs on the
// reconfigurable board while Quantization, Zig-Zag and Huffman encoding run
// as host software. The paper measures only the DCT ("the rest of the
// tasks ... have exactly similar execution pattern in both experiments"),
// but the full co-design wall time is what a user of the system sees, so
// it is modelled here: host stages can run serially after the board or
// overlapped with the next board batch (software pipelining).

// HostStages models the software side of the co-design.
type HostStages struct {
	// PerComputationNS is the host time to quantize, zig-zag and entropy
	// code one block.
	PerComputationNS float64
	// Overlapped pipelines host software with board execution: the wall
	// time becomes max(board, host) instead of board + host.
	Overlapped bool
}

// CoDesignResult summarizes a composed run.
type CoDesignResult struct {
	BoardNS float64
	HostNS  float64
	TotalNS float64
}

// ComposeCoDesign combines a board-side result with the host stages for I
// computations.
func ComposeCoDesign(board *Result, stages HostStages, iTotal int) CoDesignResult {
	host := stages.PerComputationNS * float64(iTotal)
	total := board.TotalNS + host
	if stages.Overlapped {
		total = math.Max(board.TotalNS, host)
	}
	return CoDesignResult{BoardNS: board.TotalNS, HostNS: host, TotalNS: total}
}

// AnalyticRTROverlapped is the double-buffering ablation: host<->board DMA
// overlaps FPGA execution (two memory half-banks, so k halves). Per batch,
// the wall time is max(transfer, compute) instead of their sum; the
// reconfiguration pattern is unchanged. This models the natural extension
// the paper leaves open, quantifying how much of the IDH transfer overhead
// double buffering would hide.
func AnalyticRTROverlapped(d RTRDesign, board RTRBoard, strategy fission.Strategy, iTotal int) (float64, error) {
	a := d.Analysis
	if a == nil || len(d.Partitions) != a.N {
		return 0, ErrBadDesign
	}
	k := a.K / 2 // half the memory buffers each direction
	if k < 1 {
		return 0, fission.ErrNoMemory
	}
	if iTotal <= 0 {
		return 0, errors.New("sim: non-positive computation count")
	}
	batches := (iTotal + k - 1) / k
	ct := board.ReconfigNS
	hs := board.StartNS + board.FinishNS
	dsv := board.WordNS

	total := 0.0
	switch strategy {
	case fission.FDH:
		total += float64(a.N*batches) * ct
		for i := 0; i < a.N; i++ {
			compute := float64(iTotal)*d.Partitions[i].PerComputationNS() +
				float64(batches)*(d.Partitions[i].ClockNS+hs)
			words := iTotal * (a.EnvIn[i] + envOutShare(a, i))
			transfer := float64(words) * dsv
			total += math.Max(compute, transfer)
		}
	case fission.IDH:
		total += float64(a.N) * ct
		for i := 0; i < a.N; i++ {
			compute := float64(iTotal)*d.Partitions[i].PerComputationNS() +
				float64(batches)*(d.Partitions[i].ClockNS+hs)
			transfer := float64(iTotal*(a.In[i]+a.Out[i])) * dsv
			total += math.Max(compute, transfer)
		}
	default:
		return 0, errors.New("sim: unknown strategy")
	}
	return total, nil
}

// envOutShare attributes final-output transfer to the last partition under
// FDH (outputs are read once per batch from the final configuration).
func envOutShare(a *fission.Analysis, i int) int {
	if i != a.N-1 {
		return 0
	}
	out := 0
	for p := 0; p < a.N; p++ {
		out += a.EnvOut[p]
	}
	return out
}

// RTRBoard is the reduced parameter set used by the analytic overlapped
// model (avoiding an arch dependency in the signature keeps ablation
// sweeps cheap to construct).
type RTRBoard struct {
	ReconfigNS float64
	WordNS     float64
	StartNS    float64
	FinishNS   float64
}

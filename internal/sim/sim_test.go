package sim

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/dfg"
	"repro/internal/fission"
	"repro/internal/hls"
	"repro/internal/jpeg"
)

// dctDesigns builds the paper's RTR and static DCT designs with our
// synthesized timings.
func dctDesigns(t testing.TB) (RTRDesign, StaticDesign, arch.Board) {
	t.Helper()
	board := arch.PaperXC4044Board()
	g, err := jpeg.BuildDCTGraph(hls.XC4000Library(), hls.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int, g.NumTasks())
	for i := 0; i < g.NumTasks(); i++ {
		task := g.Task(i)
		switch {
		case task.Type == "T1":
			assign[i] = 0
		case strings.HasPrefix(task.Name, "T2_0") || strings.HasPrefix(task.Name, "T2_1"):
			assign[i] = 1
		default:
			assign[i] = 2
		}
	}
	a, err := fission.Analyze(g, assign, 3, board.Memory.Words)
	if err != nil {
		t.Fatal(err)
	}
	lib := hls.XC4000Library()
	var parts []PartitionTiming
	for p := 0; p < 3; p++ {
		tasks := jpeg.PartitionBehaviors(g, assign, p)
		pd, err := hls.SynthesizePartition(tasks, lib, hls.Constraints{})
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, PartitionTiming{BodyCycles: pd.Cycles, ClockNS: pd.ClockNS})
	}
	st, err := hls.SynthesizeStatic(jpeg.StaticDCTBehaviors(), jpeg.StaticAllocation(), lib, hls.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	rtr := RTRDesign{Partitions: parts, Analysis: a}
	static := StaticDesign{
		BodyCycles: st.Cycles, ClockNS: st.ClockNS,
		InWords: 16, OutWords: 16, BatchK: board.Memory.Words / 32,
	}
	return rtr, static, board
}

func TestSimMatchesAnalyticStatic(t *testing.T) {
	_, static, board := dctDesigns(t)
	for _, I := range []int{0, 1, 100, 2048, 5000, 245760} {
		res, err := SimulateStatic(static, board, I, Options{TraceCap: -1})
		if err != nil {
			t.Fatal(err)
		}
		want := AnalyticStatic(static, board, I)
		if math.Abs(res.TotalNS-want) > 1e-3*math.Max(1, want) {
			t.Errorf("I=%d: sim %.0f != analytic %.0f", I, res.TotalNS, want)
		}
	}
}

func TestSimMatchesAnalyticRTR(t *testing.T) {
	rtr, _, board := dctDesigns(t)
	for _, strategy := range []fission.Strategy{fission.FDH, fission.IDH} {
		for _, I := range []int{0, 1, 100, 2048, 5000, 245760} {
			res, err := SimulateRTR(rtr, board, strategy, I, Options{TraceCap: -1})
			if err != nil {
				t.Fatal(err)
			}
			want := AnalyticRTR(rtr, board, strategy, I, false)
			if math.Abs(res.TotalNS-want) > 1e-3*math.Max(1, want) {
				t.Errorf("%v I=%d: sim %.0f != analytic %.0f", strategy, I, res.TotalNS, want)
			}
		}
	}
}

// TestTable1FDHLosesBadly: the paper's Table 1 finding — FDH shows no
// improvement at all, even at 245,760 blocks, because every batch pays
// 3 x 100 ms of reconfiguration.
func TestTable1FDHLoses(t *testing.T) {
	rtr, static, board := dctDesigns(t)
	for _, I := range []int{3840, 30720, 122880, 245760} {
		st, err := SimulateStatic(static, board, I, Options{TraceCap: -1})
		if err != nil {
			t.Fatal(err)
		}
		fd, err := SimulateRTR(rtr, board, fission.FDH, I, Options{TraceCap: -1})
		if err != nil {
			t.Fatal(err)
		}
		if imp := Improvement(st.TotalNS, fd.TotalNS); imp > 0 {
			t.Errorf("I=%d: FDH improvement %.1f%% > 0; paper found none", I, 100*imp)
		}
	}
}

// TestTable2IDHWinsAtScale: the paper's Table 2 finding — IDH improves on
// the static design at large image sizes, with the improvement growing
// with size.
func TestTable2IDHWins(t *testing.T) {
	rtr, static, board := dctDesigns(t)
	prev := math.Inf(-1)
	for _, I := range []int{3840, 30720, 122880, 245760} {
		st, _ := SimulateStatic(static, board, I, Options{TraceCap: -1})
		id, err := SimulateRTR(rtr, board, fission.IDH, I, Options{TraceCap: -1})
		if err != nil {
			t.Fatal(err)
		}
		imp := Improvement(st.TotalNS, id.TotalNS)
		if imp < prev {
			t.Errorf("I=%d: improvement %.1f%% not monotone (prev %.1f%%)", I, 100*imp, 100*prev)
		}
		prev = imp
	}
	// At the paper's largest size the improvement must be substantial
	// (paper: 42% with their testbed timings; our synthesized partitions
	// land in the 20-40% band — see EXPERIMENTS.md).
	if prev < 0.15 {
		t.Errorf("IDH improvement at 245,760 blocks = %.1f%%, want > 15%%", 100*prev)
	}
}

// TestXC6000Conjecture: with a 500 us reconfiguration device the
// improvement appears at much smaller sizes and grows beyond the XC4044
// number (paper conjectures 47% for the largest file).
func TestXC6000Conjecture(t *testing.T) {
	rtr, static, _ := dctDesigns(t)
	board := arch.XC6000Board()
	st, _ := SimulateStatic(static, board, 245760, Options{TraceCap: -1})
	id, err := SimulateRTR(rtr, board, fission.IDH, 245760, Options{TraceCap: -1})
	if err != nil {
		t.Fatal(err)
	}
	impLarge := Improvement(st.TotalNS, id.TotalNS)

	b4044 := arch.PaperXC4044Board()
	st44, _ := SimulateStatic(static, b4044, 245760, Options{TraceCap: -1})
	id44, _ := SimulateRTR(rtr, b4044, fission.IDH, 245760, Options{TraceCap: -1})
	imp44 := Improvement(st44.TotalNS, id44.TotalNS)
	if impLarge <= imp44 {
		t.Errorf("XC6000 improvement %.1f%% should exceed XC4044's %.1f%%", 100*impLarge, 100*imp44)
	}
	// Small image: XC6000 already wins, XC4044 does not.
	stS, _ := SimulateStatic(static, board, 3840, Options{TraceCap: -1})
	idS, _ := SimulateRTR(rtr, board, fission.IDH, 3840, Options{TraceCap: -1})
	if Improvement(stS.TotalNS, idS.TotalNS) <= 0 {
		t.Error("XC6000 should win even for small images")
	}
}

// TestComputeMatchesControllerFSM cross-checks the simulator's cycle
// formula against the actual synthesized augmented controller.
func TestComputeMatchesControllerFSM(t *testing.T) {
	g := hls.VectorProduct("t", 4, 9, 16, "in", "out", false)
	alloc := hls.MinimalAllocation(g)
	sched, err := hls.ListSchedule([]*hls.OpGraph{g}, []hls.Allocation{alloc}, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := hls.AugmentForRTR(hls.SynthesizeController("t", sched))
	for _, k := range []int{1, 5, 64} {
		res, err := f.Run(k)
		if err != nil {
			t.Fatal(err)
		}
		simCycles := k*(sched.Cycles+1) + 1
		if res.Cycles != simCycles {
			t.Errorf("k=%d: FSM %d cycles, simulator formula %d", k, res.Cycles, simCycles)
		}
	}
}

func TestTraceAccounting(t *testing.T) {
	rtr, _, board := dctDesigns(t)
	res, err := SimulateRTR(rtr, board, fission.IDH, 4096, Options{TraceCap: 100000})
	if err != nil {
		t.Fatal(err)
	}
	// Bucket sums must equal the total.
	sum := res.ComputeNS + res.ReconfigNS + res.TransferNS + res.HandshakeNS
	if math.Abs(sum-res.TotalNS) > 1e-6*res.TotalNS {
		t.Errorf("buckets %.0f != total %.0f", sum, res.TotalNS)
	}
	// Events must be contiguous and ordered.
	prevEnd := 0.0
	for i, ev := range res.Trace.Events {
		if ev.StartNS != prevEnd {
			t.Fatalf("event %d starts at %.0f, want %.0f", i, ev.StartNS, prevEnd)
		}
		if ev.EndNS < ev.StartNS {
			t.Fatalf("event %d ends before it starts", i)
		}
		prevEnd = ev.EndNS
	}
	if prevEnd != res.TotalNS {
		t.Errorf("last event ends at %.0f, total %.0f", prevEnd, res.TotalNS)
	}
	// IDH: exactly N reconfigurations.
	if res.Reconfigurations != 3 {
		t.Errorf("reconfigurations = %d, want 3", res.Reconfigurations)
	}
}

func TestTraceCap(t *testing.T) {
	rtr, _, board := dctDesigns(t)
	res, err := SimulateRTR(rtr, board, fission.FDH, 245760, Options{TraceCap: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Events) != 10 {
		t.Errorf("trace len = %d, want capped at 10", len(res.Trace.Events))
	}
	if res.Trace.Dropped == 0 {
		t.Error("expected dropped events")
	}
}

func TestBadDesigns(t *testing.T) {
	board := arch.PaperXC4044Board()
	if _, err := SimulateStatic(StaticDesign{}, board, 10, Options{}); err == nil {
		t.Error("zero static design accepted")
	}
	if _, err := SimulateRTR(RTRDesign{}, board, fission.FDH, 10, Options{}); err == nil {
		t.Error("empty RTR design accepted")
	}
	rtr, _, _ := dctDesigns(t)
	if _, err := SimulateRTR(rtr, board, fission.Strategy(9), 10, Options{}); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := SimulateRTR(rtr, board, fission.FDH, -1, Options{}); err == nil {
		t.Error("negative I accepted")
	}
}

// Property: for random partition timings and sizes, simulation equals the
// analytic model for both strategies.
func TestSimAnalyticProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		g := dfg.New("p")
		assign := make([]int, n)
		for i := 0; i < n; i++ {
			g.MustAddTask(dfg.Task{
				Name:     string(rune('a' + i)),
				ReadEnv:  1 + rng.Intn(8),
				WriteEnv: 1 + rng.Intn(8),
			})
			assign[i] = i
			if i > 0 {
				_ = g.AddEdgeByID(i-1, i, 1+rng.Intn(4))
			}
		}
		board := arch.PaperXC4044Board()
		a, err := fission.Analyze(g, assign, n, board.Memory.Words)
		if err != nil {
			return false
		}
		d := RTRDesign{Analysis: a}
		for i := 0; i < n; i++ {
			d.Partitions = append(d.Partitions, PartitionTiming{
				BodyCycles: 1 + rng.Intn(200),
				ClockNS:    float64(10 * (1 + rng.Intn(10))),
			})
		}
		I := rng.Intn(100000)
		for _, s := range []fission.Strategy{fission.FDH, fission.IDH} {
			res, err := SimulateRTR(d, board, s, I, Options{TraceCap: -1})
			if err != nil {
				return false
			}
			want := AnalyticRTR(d, board, s, I, false)
			if math.Abs(res.TotalNS-want) > 1e-6*math.Max(1, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEventKindStrings(t *testing.T) {
	for k, want := range map[EventKind]string{
		EvReconfig: "reconfig", EvTransferIn: "xfer-in", EvTransferOut: "xfer-out",
		EvStart: "start", EvCompute: "compute", EvFinish: "finish",
	} {
		if k.String() != want {
			t.Errorf("EventKind.String() = %q, want %q", k.String(), want)
		}
	}
}

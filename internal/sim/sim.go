// Package sim simulates the Run-Time Reconfigured system of the paper's
// Fig. 1 executing a temporally partitioned, loop-fissioned design: the
// host sequencer (FDH or IDH strategy), configuration loads, DMA transfers
// over the host link, start/finish handshakes, and the FPGA executing each
// partition's augmented controller (Fig. 7) for k iterations per batch.
//
// The simulator is a deterministic discrete-event model: each simulated
// activity appends a timestamped event to a trace, and the clock advances
// by the activity's latency. Partition compute time uses the same cycle
// semantics as the synthesized controller FSM in internal/hls
// (k·(body+1)+1 cycles for k iterations), which is cross-checked by tests.
//
// It regenerates the paper's Tables 1 and 2: total DCT execution time of
// the static design versus the RTR design under both sequencing strategies.
package sim

import (
	"errors"
	"fmt"

	"repro/internal/arch"
	"repro/internal/fission"
)

// EventKind classifies trace events.
type EventKind int

const (
	// EvReconfig is an FPGA configuration load.
	EvReconfig EventKind = iota
	// EvTransferIn is a host -> board memory DMA.
	EvTransferIn
	// EvTransferOut is a board -> host memory DMA.
	EvTransferOut
	// EvStart is the host's start signal.
	EvStart
	// EvCompute is an FPGA execution burst (k iterations of a partition).
	EvCompute
	// EvFinish is the controller's finish signal.
	EvFinish
)

func (k EventKind) String() string {
	switch k {
	case EvReconfig:
		return "reconfig"
	case EvTransferIn:
		return "xfer-in"
	case EvTransferOut:
		return "xfer-out"
	case EvStart:
		return "start"
	case EvCompute:
		return "compute"
	case EvFinish:
		return "finish"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one timestamped activity.
type Event struct {
	Kind    EventKind
	StartNS float64
	EndNS   float64
	Config  int // partition/configuration index (-1 for n/a)
	Batch   int // software loop index (-1 for n/a)
	Words   int // transfer size (0 for non-DMA events)
	Iter    int // iterations executed (compute events)
}

// Trace records events up to a cap (the time accounting is always exact
// even when events are dropped).
type Trace struct {
	Events  []Event
	Dropped int
	cap     int
}

func newTrace(cap int) *Trace { return &Trace{cap: cap} }

func (t *Trace) add(e Event) {
	if t.cap > 0 && len(t.Events) >= t.cap {
		t.Dropped++
		return
	}
	t.Events = append(t.Events, e)
}

// Result is the outcome of a simulation run.
type Result struct {
	// TotalNS is the end-to-end wall time.
	TotalNS float64
	// ComputeNS is FPGA execution time.
	ComputeNS float64
	// ReconfigNS is configuration-load time.
	ReconfigNS float64
	// TransferNS is host<->board DMA time.
	TransferNS float64
	// HandshakeNS is start/finish signalling time.
	HandshakeNS float64
	// Reconfigurations counts configuration loads.
	Reconfigurations int
	// Computations is the number of problem computations executed.
	Computations int
	// Trace is the event log (capped).
	Trace *Trace
}

// engine advances the clock and splits time into buckets.
type engine struct {
	board         arch.Board
	partitionCLBs []int // for partial reconfiguration scaling
	now           float64
	res           *Result
}

func newEngine(board arch.Board, traceCap int) *engine {
	return &engine{board: board, res: &Result{Trace: newTrace(traceCap)}}
}

func (e *engine) emit(kind EventKind, dur float64, config, batch, words, iter int) {
	ev := Event{Kind: kind, StartNS: e.now, EndNS: e.now + dur,
		Config: config, Batch: batch, Words: words, Iter: iter}
	e.now += dur
	e.res.Trace.add(ev)
	switch kind {
	case EvReconfig:
		e.res.ReconfigNS += dur
		e.res.Reconfigurations++
	case EvTransferIn, EvTransferOut:
		e.res.TransferNS += dur
	case EvStart, EvFinish:
		e.res.HandshakeNS += dur
	case EvCompute:
		e.res.ComputeNS += dur
	}
}

func (e *engine) reconfig(config int) {
	ct := e.board.FPGA.ReconfigTime
	if e.board.FPGA.PartialReconfig && e.partitionCLBs != nil &&
		config >= 0 && config < len(e.partitionCLBs) && e.board.FPGA.CLBs > 0 {
		ct *= float64(e.partitionCLBs[config]) / float64(e.board.FPGA.CLBs)
	}
	e.emit(EvReconfig, ct+e.board.Link.ConfigLoadNS, config, -1, 0, 0)
}

func (e *engine) transferIn(words, config, batch int) {
	if words > 0 {
		e.emit(EvTransferIn, float64(words)*e.board.Link.WordTransferNS, config, batch, words, 0)
	}
}

func (e *engine) transferOut(words, config, batch int) {
	if words > 0 {
		e.emit(EvTransferOut, float64(words)*e.board.Link.WordTransferNS, config, batch, words, 0)
	}
}

// runPartition models one start/compute/finish handshake executing iters
// iterations of a partition whose body takes bodyCycles at clockNS.
// The cycle count k·(body+1)+1 matches hls.AugmentForRTR's FSM (body states
// plus one check state per iteration, plus the finish state).
func (e *engine) runPartition(config, batch, bodyCycles int, clockNS float64, iters int) {
	e.emit(EvStart, e.board.Link.StartSignalNS, config, batch, 0, 0)
	cycles := iters*(bodyCycles+1) + 1
	e.emit(EvCompute, float64(cycles)*clockNS, config, batch, 0, iters)
	e.emit(EvFinish, e.board.Link.FinishSignalNS, config, batch, 0, 0)
}

// PartitionTiming is the synthesized timing of one temporal partition.
type PartitionTiming struct {
	// BodyCycles is the controller body length for one computation.
	BodyCycles int
	// ClockNS is the partition's clock period.
	ClockNS float64
}

// PerComputationNS returns the steady-state compute time of one computation
// (excluding the per-batch finish overhead).
func (p PartitionTiming) PerComputationNS() float64 {
	return float64(p.BodyCycles+1) * p.ClockNS
}

// RTRDesign is a temporally partitioned, fissioned design ready to run.
type RTRDesign struct {
	Partitions []PartitionTiming
	Analysis   *fission.Analysis
	// PartitionCLBs optionally records each partition's CLB usage; on
	// boards with FPGA.PartialReconfig it scales the per-partition
	// configuration load time (XC6200-style partial reconfiguration).
	PartitionCLBs []int
}

// StaticDesign is the statically configured counterpart: one configuration
// processing computations sequentially with its own iteration-counter
// controller.
type StaticDesign struct {
	BodyCycles int
	ClockNS    float64
	// InWords/OutWords are the environment words per computation.
	InWords, OutWords int
	// BatchK is the number of computations per host invocation (bounded by
	// the memory as in the RTR case; the host still stages data in
	// batches).
	BatchK int
}

// Errors.
var (
	ErrBadDesign = errors.New("sim: malformed design")
)

// Options tunes a simulation.
type Options struct {
	// TraceCap bounds the event log size (default 4096; 0 keeps default,
	// -1 disables tracing).
	TraceCap int
	// Pow2Blocks selects power-of-two block addressing (affects k).
	Pow2Blocks bool
}

func (o Options) traceCap() int {
	switch {
	case o.TraceCap == 0:
		return 4096
	case o.TraceCap < 0:
		return 1
	default:
		return o.TraceCap
	}
}

// SimulateStatic runs I computations through the static design, including
// the single initial configuration load ("the board was configured only
// once at the start") and per-batch staging transfers.
func SimulateStatic(d StaticDesign, board arch.Board, iTotal int, opt Options) (*Result, error) {
	if d.BodyCycles <= 0 || d.ClockNS <= 0 || d.BatchK <= 0 {
		return nil, fmt.Errorf("%w: %+v", ErrBadDesign, d)
	}
	if iTotal < 0 {
		return nil, fmt.Errorf("sim: negative computation count")
	}
	e := newEngine(board, opt.traceCap())
	e.reconfig(0)
	done := 0
	batch := 0
	for done < iTotal {
		k := d.BatchK
		if iTotal-done < k {
			k = iTotal - done
		}
		e.transferIn(k*d.InWords, 0, batch)
		e.runPartition(0, batch, d.BodyCycles, d.ClockNS, k)
		e.transferOut(k*d.OutWords, 0, batch)
		done += k
		batch++
	}
	e.res.TotalNS = e.now
	e.res.Computations = iTotal
	return e.res, nil
}

// SimulateRTR runs I computations through the fissioned RTR design under
// the given sequencing strategy, following the host pseudocode of Sec. 2.2.
func SimulateRTR(d RTRDesign, board arch.Board, strategy fission.Strategy, iTotal int, opt Options) (*Result, error) {
	a := d.Analysis
	if a == nil || len(d.Partitions) != a.N || a.N == 0 {
		return nil, fmt.Errorf("%w: partition timings do not match analysis", ErrBadDesign)
	}
	for _, p := range d.Partitions {
		if p.BodyCycles <= 0 || p.ClockNS <= 0 {
			return nil, fmt.Errorf("%w: %+v", ErrBadDesign, p)
		}
	}
	if iTotal < 0 {
		return nil, errors.New("sim: negative computation count")
	}
	k := a.K
	if opt.Pow2Blocks {
		k = a.KPow2
	}
	if k < 1 {
		return nil, fission.ErrNoMemory
	}
	e := newEngine(board, opt.traceCap())
	e.partitionCLBs = d.PartitionCLBs

	switch strategy {
	case fission.FDH:
		// for each batch: stage inputs, run all N configurations over the
		// batch (intermediates stay in on-board memory), read outputs.
		done := 0
		batch := 0
		for done < iTotal {
			kj := k
			if iTotal-done < kj {
				kj = iTotal - done
			}
			for i := 0; i < a.N; i++ {
				e.reconfig(i)
				e.transferIn(kj*a.EnvIn[i], i, batch)
				e.runPartition(i, batch, d.Partitions[i].BodyCycles, d.Partitions[i].ClockNS, kj)
			}
			out := 0
			for i := 0; i < a.N; i++ {
				out += a.EnvOut[i]
			}
			e.transferOut(kj*out, a.N-1, batch)
			done += kj
			batch++
		}
	case fission.IDH:
		// for each configuration: load once, then stream every batch's
		// inputs and outputs through the host.
		for i := 0; i < a.N; i++ {
			e.reconfig(i)
			done := 0
			batch := 0
			for done < iTotal {
				kj := k
				if iTotal-done < kj {
					kj = iTotal - done
				}
				e.transferIn(kj*a.In[i], i, batch)
				e.runPartition(i, batch, d.Partitions[i].BodyCycles, d.Partitions[i].ClockNS, kj)
				e.transferOut(kj*a.Out[i], i, batch)
				done += kj
				batch++
			}
		}
	default:
		return nil, fmt.Errorf("sim: unknown strategy %v", strategy)
	}
	e.res.TotalNS = e.now
	e.res.Computations = iTotal
	return e.res, nil
}

// AnalyticStatic is the closed-form counterpart of SimulateStatic, used to
// cross-check the event model.
func AnalyticStatic(d StaticDesign, board arch.Board, iTotal int) float64 {
	if iTotal == 0 {
		return board.FPGA.ReconfigTime + board.Link.ConfigLoadNS
	}
	batches := (iTotal + d.BatchK - 1) / d.BatchK
	total := board.FPGA.ReconfigTime + board.Link.ConfigLoadNS
	total += float64(iTotal) * float64(d.BodyCycles+1) * d.ClockNS
	total += float64(batches) * (d.ClockNS + board.Link.StartSignalNS + board.Link.FinishSignalNS)
	total += float64(iTotal*(d.InWords+d.OutWords)) * board.Link.WordTransferNS
	return total
}

// AnalyticRTR is the closed-form counterpart of SimulateRTR.
func AnalyticRTR(d RTRDesign, board arch.Board, strategy fission.Strategy, iTotal int, pow2 bool) float64 {
	a := d.Analysis
	k := a.K
	if pow2 {
		k = a.KPow2
	}
	if iTotal == 0 {
		if strategy == fission.IDH {
			return float64(a.N) * (board.FPGA.ReconfigTime + board.Link.ConfigLoadNS)
		}
		return 0
	}
	batches := (iTotal + k - 1) / k
	ct := board.FPGA.ReconfigTime + board.Link.ConfigLoadNS
	hs := board.Link.StartSignalNS + board.Link.FinishSignalNS

	total := 0.0
	for i := 0; i < a.N; i++ {
		total += float64(iTotal) * d.Partitions[i].PerComputationNS()
		total += float64(batches) * (d.Partitions[i].ClockNS + hs)
	}
	switch strategy {
	case fission.FDH:
		total += float64(a.N*batches) * ct
		env := 0
		for i := 0; i < a.N; i++ {
			env += a.EnvIn[i] + a.EnvOut[i]
		}
		total += float64(iTotal*env) * board.Link.WordTransferNS
	case fission.IDH:
		total += float64(a.N) * ct
		words := 0
		for i := 0; i < a.N; i++ {
			words += a.In[i] + a.Out[i]
		}
		total += float64(iTotal*words) * board.Link.WordTransferNS
	}
	return total
}

// Improvement returns the fractional speedup of rtr over static:
// (static - rtr) / static. Negative values mean the RTR design is slower.
func Improvement(staticNS, rtrNS float64) float64 {
	if staticNS == 0 {
		return 0
	}
	return (staticNS - rtrNS) / staticNS
}

package sim

import (
	"strings"
	"testing"

	"repro/internal/fission"
)

func TestGantt(t *testing.T) {
	rtr, _, board := dctDesigns(t)
	res, err := SimulateRTR(rtr, board, fission.IDH, 4096, Options{TraceCap: 1000})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Gantt(60, 100)
	for _, want := range []string{"reconfig", "compute", "xfer-in", "trace:"} {
		if !strings.Contains(g, want) {
			t.Errorf("gantt missing %q:\n%s", want, g)
		}
	}
	// Reconfiguration dominates a small run: its row must contain R marks.
	if !strings.Contains(g, "R") {
		t.Errorf("no reconfiguration marks:\n%s", g)
	}
	empty := (&Result{Trace: newTrace(8)}).Gantt(40, 10)
	if !strings.Contains(empty, "no events") {
		t.Errorf("empty gantt: %q", empty)
	}
}

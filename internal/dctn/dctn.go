// Package dctn generalizes the paper's 4x4 DCT case study to arbitrary
// n x n blocks (the paper's introduction motivates JPEG, whose standard
// block size is 8x8). The structure mirrors Fig. 8 exactly: an n x n DCT is
// two consecutive matrix multiplications expressed as 2n² vector-product
// tasks in n collections of 2n, with T1 tasks producing intermediate rows
// and T2 tasks consuming them.
//
// For n = 4 the generated task graph and the fixed-point arithmetic agree
// with internal/jpeg (property-tested), so the package doubles as an
// independent check of the case-study implementation.
package dctn

import (
	"fmt"
	"math"

	"repro/internal/dfg"
	"repro/internal/hls"
)

// Matrix returns the orthonormal n x n DCT-II matrix.
func Matrix(n int) [][]float64 {
	c := make([][]float64, n)
	for i := range c {
		c[i] = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		c[0][j] = 1 / math.Sqrt(float64(n))
	}
	for i := 1; i < n; i++ {
		for j := 0; j < n; j++ {
			c[i][j] = math.Sqrt(2/float64(n)) *
				math.Cos(float64(2*j+1)*float64(i)*math.Pi/(2*float64(n)))
		}
	}
	return c
}

// CoefFracBits matches internal/jpeg's fixed-point precision.
const CoefFracBits = 6

const (
	stage1Shift = 2
	stage2Shift = 2*CoefFracBits - stage1Shift
)

// CoefFixed returns the DCT matrix in Q(CoefFracBits) fixed point.
func CoefFixed(n int) [][]int {
	c := Matrix(n)
	q := make([][]int, n)
	for i := range q {
		q[i] = make([]int, n)
		for j := 0; j < n; j++ {
			q[i][j] = int(math.Round(c[i][j] * float64(int(1)<<CoefFracBits)))
		}
	}
	return q
}

func roundShift(v, s int) int {
	if s == 0 {
		return v
	}
	half := 1 << (s - 1)
	if v >= 0 {
		return (v + half) >> s
	}
	return -((-v + half) >> s)
}

// DCTFixed computes the two-stage fixed-point n x n DCT (2n² vector
// products, exactly the task-graph semantics).
func DCTFixed(x [][]int) ([][]int, error) {
	n := len(x)
	if n == 0 {
		return nil, fmt.Errorf("dctn: empty block")
	}
	for _, row := range x {
		if len(row) != n {
			return nil, fmt.Errorf("dctn: block is not square")
		}
	}
	cq := CoefFixed(n)
	// Stage 1: Y = Cq * X, stage-1 shift.
	y := make([][]int, n)
	for i := range y {
		y[i] = make([]int, n)
		for j := 0; j < n; j++ {
			acc := 0
			for k := 0; k < n; k++ {
				acc += cq[i][k] * x[k][j]
			}
			y[i][j] = roundShift(acc, stage1Shift)
		}
	}
	// Stage 2: Z = Y * Cqᵀ, final shift.
	z := make([][]int, n)
	for i := range z {
		z[i] = make([]int, n)
		for j := 0; j < n; j++ {
			acc := 0
			for k := 0; k < n; k++ {
				acc += y[i][k] * cq[j][k]
			}
			z[i][j] = roundShift(acc, stage2Shift)
		}
	}
	return z, nil
}

// DCTFloat is the exact reference transform.
func DCTFloat(x [][]int) ([][]int, error) {
	n := len(x)
	if n == 0 {
		return nil, fmt.Errorf("dctn: empty block")
	}
	c := Matrix(n)
	y := make([][]float64, n)
	for i := range y {
		y[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				y[i][j] += c[i][k] * float64(x[k][j])
			}
		}
	}
	z := make([][]int, n)
	zf := make([][]float64, n)
	for i := range zf {
		zf[i] = make([]float64, n)
		z[i] = make([]int, n)
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				zf[i][j] += y[i][k] * c[j][k]
			}
			z[i][j] = int(math.Round(zf[i][j]))
		}
	}
	return z, nil
}

// Widths returns the multiplier/accumulator widths for the two stages of
// an n x n DCT with 8-bit level-shifted samples, following the paper's
// 4x4 pairing (9/16 and 17/24) generalized: stage-1 products grow by
// log2(n) accumulation bits, stage-2 operands by the stage-1 growth.
func Widths(n int) (t1Mul, t1Acc, t2Mul, t2Acc int) {
	lg := 0
	for 1<<lg < n {
		lg++
	}
	t1Mul = 9
	t1Acc = 9 + CoefFracBits - stage1Shift + lg + 1 // 16 for n=4
	t2Mul = t1Acc + 1                               // 17 for n=4
	t2Acc = t2Mul + lg + 5                          // 24 for n=4
	return
}

// BuildGraph constructs the generalized Fig. 8 task graph for an n x n DCT
// with synthesis costs from the estimation engine.
func BuildGraph(n int, lib *hls.Library, cons hls.Constraints) (*dfg.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("dctn: n must be >= 2, got %d", n)
	}
	t1Mul, t1Acc, t2Mul, t2Acc := Widths(n)
	g := dfg.New(fmt.Sprintf("dct%dx%d", n, n))

	t1b := hls.VectorProduct("T1", n, t1Mul, t1Acc, "X", "Y", false)
	e1, err := hls.EstimateTask(t1b, lib, cons)
	if err != nil {
		return nil, err
	}
	t2b := hls.VectorProduct("T2", n, t2Mul, t2Acc, "Y", "Z", false)
	e2, err := hls.EstimateTask(t2b, lib, cons)
	if err != nil {
		return nil, err
	}

	name1 := func(i, j int) string { return fmt.Sprintf("T1_%d_%d", i, j) }
	name2 := func(i, j int) string { return fmt.Sprintf("T2_%d_%d", i, j) }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if _, err := g.AddTask(dfg.Task{
				Name: name1(i, j), Type: "T1",
				Resources: e1.CLBs, Delay: e1.DelayNS, ReadEnv: 1,
				Payload: hls.VectorProduct(name1(i, j), n, t1Mul, t1Acc, "X", "Y", false),
			}); err != nil {
				return nil, err
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if _, err := g.AddTask(dfg.Task{
				Name: name2(i, j), Type: "T2",
				Resources: e2.CLBs, Delay: e2.DelayNS, WriteEnv: 1,
				Payload: hls.VectorProduct(name2(i, j), n, t2Mul, t2Acc, "Y", "Z", false),
			}); err != nil {
				return nil, err
			}
			for k := 0; k < n; k++ {
				if err := g.AddEdge(name1(i, k), name2(i, j), 1); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

package dctn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/fission"
	"repro/internal/hls"
	"repro/internal/jpeg"
	"repro/internal/listpart"
	"repro/internal/tempart"
)

func randSquare(rng *rand.Rand, n int) [][]int {
	x := make([][]int, n)
	for i := range x {
		x[i] = make([]int, n)
		for j := range x[i] {
			x[i][j] = rng.Intn(256) - 128
		}
	}
	return x
}

// TestAgreesWithJPEGAt4: the generalized implementation must reproduce
// internal/jpeg's fixed-point DCT bit-for-bit at n=4.
func TestAgreesWithJPEGAt4(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b jpeg.Block
		x := randSquare(rng, 4)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				b[i][j] = x[i][j]
			}
		}
		z, err := DCTFixed(x)
		if err != nil {
			return false
		}
		want := jpeg.DCTFixed(b)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if z[i][j] != want[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestFixedTracksFloat8: fixed-point error stays bounded for 8x8 blocks.
func TestFixedTracksFloat8(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		x := randSquare(rng, 8)
		zq, err := DCTFixed(x)
		if err != nil {
			t.Fatal(err)
		}
		zf, err := DCTFloat(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				if d := math.Abs(float64(zq[i][j] - zf[i][j])); d > 16 {
					t.Fatalf("(%d,%d): fixed %d vs float %d", i, j, zq[i][j], zf[i][j])
				}
			}
		}
	}
}

func TestWidthsMatchPaperAt4(t *testing.T) {
	m1, a1, m2, a2 := Widths(4)
	if m1 != 9 || a1 != 16 || m2 != 17 || a2 != 24 {
		t.Errorf("Widths(4) = %d/%d/%d/%d, want 9/16/17/24", m1, a1, m2, a2)
	}
}

func TestBuildGraph4MatchesJPEGGraph(t *testing.T) {
	lib := hls.XC4000Library()
	g4, err := BuildGraph(4, lib, hls.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	gj, err := jpeg.BuildDCTGraph(lib, hls.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if g4.NumTasks() != gj.NumTasks() || g4.NumEdges() != gj.NumEdges() {
		t.Errorf("4x4 graphs differ: %d/%d tasks, %d/%d edges",
			g4.NumTasks(), gj.NumTasks(), g4.NumEdges(), gj.NumEdges())
	}
	// Same synthesis costs.
	if g4.Task(0).Resources != 70 {
		t.Errorf("T1 = %d CLBs, want 70", g4.Task(0).Resources)
	}
}

// TestDCT8PartitioningScale: the 8x8 graph (128 tasks) flows through the
// greedy partitioner and fission analysis on the paper's board.
func TestDCT8PartitioningScale(t *testing.T) {
	lib := hls.XC4000Library()
	g, err := BuildGraph(8, lib, hls.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 128 || g.NumEdges() != 8*64 {
		t.Fatalf("8x8 graph: %d tasks, %d edges", g.NumTasks(), g.NumEdges())
	}
	board := arch.PaperXC4044Board()
	n0 := tempart.MinPartitions(g, board)
	if n0 < 4 {
		t.Errorf("lower bound %d suspiciously small for 128 wide tasks", n0)
	}
	p, err := listpart.Solve(g, board, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.N < n0 {
		t.Errorf("greedy N=%d below lower bound %d", p.N, n0)
	}
	if err := tempart.CheckFeasible(g, board, p.Assign, p.N); err != nil {
		t.Fatal(err)
	}
	a, err := fission.Analyze(g, p.Assign, p.N, board.Memory.Words)
	if err != nil {
		t.Fatal(err)
	}
	if a.K < 1 {
		t.Errorf("k = %d", a.K)
	}
	// 8x8: 64 distinct environment inputs and 64 outputs in total,
	// distributed over however many partitions greedy opened.
	envIn, envOut := 0, 0
	for i := 0; i < a.N; i++ {
		envIn += a.EnvIn[i]
		envOut += a.EnvOut[i]
	}
	if envIn != 64 || envOut != 64 {
		t.Errorf("env words = %d in / %d out, want 64/64", envIn, envOut)
	}
}

func TestBuildGraphErrors(t *testing.T) {
	if _, err := BuildGraph(1, hls.XC4000Library(), hls.Constraints{}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := DCTFixed(nil); err == nil {
		t.Error("empty block accepted")
	}
	if _, err := DCTFixed([][]int{{1, 2}, {3}}); err == nil {
		t.Error("ragged block accepted")
	}
}

// TestMatrixOrthonormal: C * Cᵀ = I for several n.
func TestMatrixOrthonormal(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		c := Matrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				dot := 0.0
				for k := 0; k < n; k++ {
					dot += c[i][k] * c[j][k]
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(dot-want) > 1e-9 {
					t.Fatalf("n=%d: (C Cᵀ)[%d][%d] = %g", n, i, j, dot)
				}
			}
		}
	}
}

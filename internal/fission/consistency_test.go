package fission

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/dfg"
)

// TestPlanMatchesAnalyticFormulas: the Plan's overhead fields must equal
// the paper's closed forms for random chains.
//
//	FDH: reconfig = N*CT*I_sw,  transfer = I * Σ(envIn+envOut) * D_sv
//	IDH: reconfig = N*CT,       transfer = I * Σ(In+Out) * D_sv
func TestPlanMatchesAnalyticFormulas(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		g := dfg.New("chain")
		assign := make([]int, n)
		for i := 0; i < n; i++ {
			g.MustAddTask(dfg.Task{
				Name:     string(rune('a' + i)),
				ReadEnv:  rng.Intn(6),
				WriteEnv: rng.Intn(6),
			})
			assign[i] = i
			if i > 0 {
				_ = g.AddEdgeByID(i-1, i, 1+rng.Intn(5))
			}
		}
		board := arch.PaperXC4044Board()
		a, err := Analyze(g, assign, n, board.Memory.Words)
		if err != nil {
			return false
		}
		iTotal := 1 + rng.Intn(500000)
		ct := board.FPGA.ReconfigTime
		dsv := board.Link.WordTransferNS

		fdh, err := NewPlan(a, board, FDH, iTotal, false)
		if err != nil {
			return false
		}
		isw := float64(fdh.Isw)
		if math.Abs(fdh.ReconfigNS-float64(n)*ct*isw) > 1 {
			return false
		}
		env := 0
		for i := 0; i < n; i++ {
			env += a.EnvIn[i] + a.EnvOut[i]
		}
		if math.Abs(fdh.TransferNS-float64(env*iTotal)*dsv) > 1 {
			return false
		}

		idh, err := NewPlan(a, board, IDH, iTotal, false)
		if err != nil {
			return false
		}
		if math.Abs(idh.ReconfigNS-float64(n)*ct) > 1 {
			return false
		}
		words := 0
		for i := 0; i < n; i++ {
			words += a.In[i] + a.Out[i]
		}
		return math.Abs(idh.TransferNS-float64(words*iTotal)*dsv) < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestIswCeiling: I_sw = ceil(I/k) over a boundary sweep.
func TestIswCeiling(t *testing.T) {
	g := dfg.New("g")
	g.MustAddTask(dfg.Task{Name: "a", ReadEnv: 16, WriteEnv: 16})
	board := arch.PaperXC4044Board()
	a, err := Analyze(g, []int{0}, 1, board.Memory.Words)
	if err != nil {
		t.Fatal(err)
	}
	if a.K != 2048 {
		t.Fatalf("k = %d", a.K)
	}
	cases := map[int]int{1: 1, 2047: 1, 2048: 1, 2049: 2, 4096: 2, 4097: 3}
	for I, want := range cases {
		p, err := NewPlan(a, board, FDH, I, false)
		if err != nil {
			t.Fatal(err)
		}
		if p.Isw != want {
			t.Errorf("I=%d: I_sw = %d, want %d", I, p.Isw, want)
		}
	}
}

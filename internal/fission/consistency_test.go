package fission

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/dfg"
	"repro/internal/ilp"
	"repro/internal/tempart"
)

// TestPlanMatchesAnalyticFormulas: the Plan's overhead fields must equal
// the paper's closed forms for random chains.
//
//	FDH: reconfig = N*CT*I_sw,  transfer = I * Σ(envIn+envOut) * D_sv
//	IDH: reconfig = N*CT,       transfer = I * Σ(In+Out) * D_sv
func TestPlanMatchesAnalyticFormulas(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		g := dfg.New("chain")
		assign := make([]int, n)
		for i := 0; i < n; i++ {
			g.MustAddTask(dfg.Task{
				Name:     string(rune('a' + i)),
				ReadEnv:  rng.Intn(6),
				WriteEnv: rng.Intn(6),
			})
			assign[i] = i
			if i > 0 {
				_ = g.AddEdgeByID(i-1, i, 1+rng.Intn(5))
			}
		}
		board := arch.PaperXC4044Board()
		a, err := Analyze(g, assign, n, board.Memory.Words)
		if err != nil {
			return false
		}
		iTotal := 1 + rng.Intn(500000)
		ct := board.FPGA.ReconfigTime
		dsv := board.Link.WordTransferNS

		fdh, err := NewPlan(a, board, FDH, iTotal, false)
		if err != nil {
			return false
		}
		isw := float64(fdh.Isw)
		if math.Abs(fdh.ReconfigNS-float64(n)*ct*isw) > 1 {
			return false
		}
		env := 0
		for i := 0; i < n; i++ {
			env += a.EnvIn[i] + a.EnvOut[i]
		}
		if math.Abs(fdh.TransferNS-float64(env*iTotal)*dsv) > 1 {
			return false
		}

		idh, err := NewPlan(a, board, IDH, iTotal, false)
		if err != nil {
			return false
		}
		if math.Abs(idh.ReconfigNS-float64(n)*ct) > 1 {
			return false
		}
		words := 0
		for i := 0; i < n; i++ {
			words += a.In[i] + a.Out[i]
		}
		return math.Abs(idh.TransferNS-float64(words*iTotal)*dsv) < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestIswCeiling: I_sw = ceil(I/k) over a boundary sweep.
func TestIswCeiling(t *testing.T) {
	g := dfg.New("g")
	g.MustAddTask(dfg.Task{Name: "a", ReadEnv: 16, WriteEnv: 16})
	board := arch.PaperXC4044Board()
	a, err := Analyze(g, []int{0}, 1, board.Memory.Words)
	if err != nil {
		t.Fatal(err)
	}
	if a.K != 2048 {
		t.Fatalf("k = %d", a.K)
	}
	cases := map[int]int{1: 1, 2047: 1, 2048: 1, 2049: 2, 4096: 2, 4097: 3}
	for I, want := range cases {
		p, err := NewPlan(a, board, FDH, I, false)
		if err != nil {
			t.Fatal(err)
		}
		if p.Isw != want {
			t.Errorf("I=%d: I_sw = %d, want %d", I, p.Isw, want)
		}
	}
}

// TestFissionStableUnderParallelPartitioning threads the warm-started,
// parallel ILP solver through the fission layer: the memory accounting and
// batch size k computed from a partitioning found by the multi-worker,
// speculative-N search must be identical to the sequential flow's (the
// solvers are required to agree on the optimal latency; equal latency on
// these models pins N, and the analysis must then agree word for word).
func TestFissionStableUnderParallelPartitioning(t *testing.T) {
	board := arch.PaperXC4044Board()
	g := dfg.New("fis")
	for i := 0; i < 6; i++ {
		g.MustAddTask(dfg.Task{
			Name:      string(rune('a' + i)),
			Resources: 600,
			Delay:     float64(50 + 10*i),
			ReadEnv:   2,
			WriteEnv:  1,
		})
		if i > 0 {
			_ = g.AddEdgeByID(i-1, i, 4)
		}
	}
	seq, err := tempart.Solve(tempart.Input{Graph: g, Board: board})
	if err != nil {
		t.Fatal(err)
	}
	par, err := tempart.Solve(tempart.Input{
		Graph: g, Board: board, SpeculateN: 2, ILP: ilp.Options{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if par.N != seq.N || math.Abs(par.Latency-seq.Latency) > 1e-6 {
		t.Fatalf("parallel N=%d latency=%g, sequential N=%d latency=%g",
			par.N, par.Latency, seq.N, seq.Latency)
	}
	aSeq, err := Analyze(g, seq.Assign, seq.N, board.Memory.Words)
	if err != nil {
		t.Fatal(err)
	}
	aPar, err := Analyze(g, par.Assign, par.N, board.Memory.Words)
	if err != nil {
		t.Fatal(err)
	}
	if aPar.K != aSeq.K || aPar.MaxMTemp != aSeq.MaxMTemp {
		t.Errorf("parallel fission k=%d m_temp=%d, sequential k=%d m_temp=%d",
			aPar.K, aPar.MaxMTemp, aSeq.K, aSeq.MaxMTemp)
	}
	for _, strat := range []Strategy{FDH, IDH} {
		pSeq, err := NewPlan(aSeq, board, strat, 10000, false)
		if err != nil {
			t.Fatal(err)
		}
		pPar, err := NewPlan(aPar, board, strat, 10000, false)
		if err != nil {
			t.Fatal(err)
		}
		if pPar.Reconfigurations != pSeq.Reconfigurations ||
			math.Abs(pPar.TotalOverheadNS()-pSeq.TotalOverheadNS()) > 1 {
			t.Errorf("%v: parallel plan diverged (%d reconfigs, %g ns overhead vs %d, %g)",
				strat, pPar.Reconfigurations, pPar.TotalOverheadNS(),
				pSeq.Reconfigurations, pSeq.TotalOverheadNS())
		}
	}
}

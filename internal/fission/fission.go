// Package fission implements the paper's loop fission analysis (Sec. 2.2):
// given a temporally partitioned task graph whose computation repeats for an
// implicit outer loop of I iterations (known only at run time), it computes
// how many computations k can be batched into each temporal partition under
// the on-board memory limit (Eq. 9), and models the two host sequencing
// strategies:
//
//   - FDH (Final Data to Host): all N partitions run over each batch of k
//     computations before the next batch starts; the device is reconfigured
//     N times per batch, so the reconfiguration overhead is N·CT·I_sw.
//   - IDH (Intermediate Data to Host): each partition runs over all I
//     computations before the next partition is configured, shuttling
//     intermediate data to the host between batches; the reconfiguration
//     overhead drops to N·CT at the price of 2·k·I_sw·D_sv·m_temp extra
//     data movement.
package fission

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/arch"
	"repro/internal/dfg"
)

// Analysis is the per-partition memory accounting and the resulting batch
// size k for one computation of the task graph.
type Analysis struct {
	// N is the number of temporal partitions.
	N int
	// In holds, per partition, the words read per computation (environment
	// inputs staged by the host plus intermediate values produced by
	// earlier partitions).
	In []int
	// Out holds, per partition, the words produced per computation that
	// must be stored (environment outputs plus values consumed by later
	// partitions).
	Out []int
	// EnvIn / EnvOut are the environment-only parts of In / Out: the data
	// that must cross the host link even when intermediates stay on the
	// board (the FDH case).
	EnvIn  []int
	EnvOut []int
	// MTemp is In[i]+Out[i]: the paper's m_temp^i.
	MTemp []int
	// MaxMTemp is max_i MTemp[i], the denominator of Eq. 9.
	MaxMTemp int
	// K is Eq. 9: the computations batched per configuration run,
	// ⌊M_max / MaxMTemp⌋.
	K int
	// BlockWords is MaxMTemp rounded up to a power of two (Sec. 3's
	// simplified address generation).
	BlockWords int
	// KPow2 is the batch size under power-of-two block rounding.
	KPow2 int
	// WastagePerBlock is BlockWords - MaxMTemp (Sec. 3's memory wastage
	// tradeoff).
	WastagePerBlock int
}

// Errors.
var (
	ErrNoPartitions = errors.New("fission: empty partitioning")
	ErrNoMemory     = errors.New("fission: a single computation exceeds the on-board memory")
)

// outWords returns the distinct words task t must store for downstream
// partitions: its output payload counts once even with multiple consumers
// (the paper stores each intermediate value once in the memory block).
func outWords(g *dfg.Graph, t int) int {
	w := 0
	for _, e := range g.Edges() {
		if e.From == t && e.Data > w {
			w = e.Data
		}
	}
	return w
}

// Analyze computes the memory accounting of Sec. 4 for a partitioned graph.
func Analyze(g *dfg.Graph, assign []int, n int, memWords int) (*Analysis, error) {
	if n <= 0 {
		return nil, ErrNoPartitions
	}
	if len(assign) != g.NumTasks() {
		return nil, fmt.Errorf("fission: assignment covers %d of %d tasks", len(assign), g.NumTasks())
	}
	a := &Analysis{
		N:      n,
		In:     make([]int, n),
		Out:    make([]int, n),
		EnvIn:  make([]int, n),
		EnvOut: make([]int, n),
	}
	for t := 0; t < g.NumTasks(); t++ {
		p := assign[t]
		if p < 0 || p >= n {
			return nil, fmt.Errorf("fission: task %d in invalid partition %d", t, p)
		}
		task := g.Task(t)
		a.In[p] += task.ReadEnv
		a.Out[p] += task.WriteEnv
		a.EnvIn[p] += task.ReadEnv
		a.EnvOut[p] += task.WriteEnv

		// Does t feed any later partition? Count its payload once in its
		// own partition's output, and once in each later partition that
		// consumes it.
		consumers := map[int]bool{}
		for _, s := range g.Succs(t) {
			if assign[s] > p {
				consumers[assign[s]] = true
			}
		}
		if len(consumers) > 0 {
			w := outWords(g, t)
			a.Out[p] += w
			for cp := range consumers {
				a.In[cp] += w
			}
		}
	}
	a.MTemp = make([]int, n)
	for i := 0; i < n; i++ {
		a.MTemp[i] = a.In[i] + a.Out[i]
		if a.MTemp[i] > a.MaxMTemp {
			a.MaxMTemp = a.MTemp[i]
		}
	}
	if a.MaxMTemp == 0 {
		// A design with no memory traffic batches arbitrarily; pin k to
		// the memory size as a sane cap.
		a.K = memWords
		a.KPow2 = memWords
		a.BlockWords = 0
		return a, nil
	}
	a.K = memWords / a.MaxMTemp
	if a.K < 1 {
		return nil, fmt.Errorf("%w: m_temp=%d words, memory=%d", ErrNoMemory, a.MaxMTemp, memWords)
	}
	a.BlockWords = NextPow2(a.MaxMTemp)
	a.KPow2 = memWords / a.BlockWords
	a.WastagePerBlock = a.BlockWords - a.MaxMTemp
	return a, nil
}

// NextPow2 returns the smallest power of two >= n (n >= 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Strategy selects a host sequencing strategy.
type Strategy int

const (
	// FDH is Final Data to Host (Fig. 5b).
	FDH Strategy = iota
	// IDH is Intermediate Data to Host (Fig. 5c).
	IDH
)

func (s Strategy) String() string {
	switch s {
	case FDH:
		return "FDH"
	case IDH:
		return "IDH"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Plan is the loop fission execution plan for a given total computation
// count I, with the analytic overhead model of Sec. 2.2.
type Plan struct {
	Strategy Strategy
	Analysis *Analysis
	// I is the total number of computations (the run-time loop count).
	I int
	// K is the batch size actually used (Analysis.K, or KPow2 when
	// power-of-two addressing is chosen).
	K int
	// Isw is the software loop count ⌈I/K⌉ executed on the host.
	Isw int
	// Reconfigurations is the total number of FPGA configuration loads.
	Reconfigurations int
	// ReconfigNS is the total reconfiguration overhead.
	ReconfigNS float64
	// TransferNS is the total host<->board data movement time.
	TransferNS float64
	// TransferWords is the total words moved between host and board.
	TransferWords int
}

// NewPlan builds the execution plan for I computations under a strategy.
// pow2 selects the power-of-two block layout of Sec. 3.
func NewPlan(a *Analysis, board arch.Board, strategy Strategy, iTotal int, pow2 bool) (*Plan, error) {
	if iTotal < 0 {
		return nil, fmt.Errorf("fission: negative computation count %d", iTotal)
	}
	k := a.K
	if pow2 {
		k = a.KPow2
	}
	if k < 1 {
		return nil, ErrNoMemory
	}
	// "If I ... is less than k ... only the first I computations from the
	// output will have to be picked up."
	if iTotal < k && iTotal > 0 {
		k = iTotal
	}
	p := &Plan{Strategy: strategy, Analysis: a, I: iTotal, K: k}
	if iTotal == 0 {
		return p, nil
	}
	p.Isw = (iTotal + k - 1) / k
	ct := board.FPGA.ReconfigTime + board.Link.ConfigLoadNS
	dsv := board.Link.WordTransferNS

	switch strategy {
	case FDH:
		// Every batch reconfigures through all N partitions; only
		// environment inputs and final outputs move between host and
		// board (intermediates stay in on-board memory).
		p.Reconfigurations = a.N * p.Isw
		p.ReconfigNS = float64(p.Reconfigurations) * ct
		words := 0
		for i := 0; i < a.N; i++ {
			words += envIn(a, i) + envOut(a, i)
		}
		p.TransferWords = words * iTotal
		p.TransferNS = float64(p.TransferWords) * dsv
	case IDH:
		// N reconfigurations total; every partition's inputs and outputs
		// cross the host link once per computation.
		p.Reconfigurations = a.N
		p.ReconfigNS = float64(p.Reconfigurations) * ct
		words := 0
		for i := 0; i < a.N; i++ {
			words += a.In[i] + a.Out[i]
		}
		p.TransferWords = words * iTotal
		p.TransferNS = float64(p.TransferWords) * dsv
	default:
		return nil, fmt.Errorf("fission: unknown strategy %d", int(strategy))
	}
	return p, nil
}

// envIn returns the environment-input words of partition i: the data the
// host must stage over the link even when intermediates stay on the board.
func envIn(a *Analysis, i int) int { return a.EnvIn[i] }

func envOut(a *Analysis, i int) int { return a.EnvOut[i] }

// TotalOverheadNS is ReconfigNS + TransferNS.
func (p *Plan) TotalOverheadNS() float64 { return p.ReconfigNS + p.TransferNS }

// BreakEvenComputations returns the paper's break-even analysis (Sec. 4):
// the number of computations that must be batched into each configuration
// pass so that the reconfiguration overhead N·CT is recovered by the
// per-computation execution gain of the RTR design over the static design.
// Returns +Inf when the RTR design is not faster per computation.
func BreakEvenComputations(board arch.Board, n int, staticPerCompNS, rtrPerCompNS float64) float64 {
	gain := staticPerCompNS - rtrPerCompNS
	if gain <= 0 {
		return math.Inf(1)
	}
	return math.Ceil(float64(n) * (board.FPGA.ReconfigTime + board.Link.ConfigLoadNS) / gain)
}

// SequencerCode generates the host software loop for the plan, matching the
// pseudocode of Sec. 2.2. The loop bound I_sw is emitted symbolically
// because "the actual value of I will be known only at run time".
func SequencerCode(strategy Strategy, n int) string {
	var b strings.Builder
	switch strategy {
	case FDH:
		b.WriteString("// FDH (Final Data to Host) host sequencer\n")
		b.WriteString("for (j = 0; j <= I_sw - 1; j++) {\n")
		b.WriteString("    load_block(j, INPUT, config[0]);\n")
		fmt.Fprintf(&b, "    for (i = 0; i <= %d; i++) {\n", n-1)
		b.WriteString("        load_configuration(i);\n")
		b.WriteString("        send_start_signal();\n")
		b.WriteString("        wait_finish_signal();\n")
		b.WriteString("    }\n")
		fmt.Fprintf(&b, "    read_block(j, OUTPUT, config[%d]);\n", n-1)
		b.WriteString("}\n")
	case IDH:
		b.WriteString("// IDH (Intermediate Data to Host) host sequencer\n")
		fmt.Fprintf(&b, "for (i = 0; i <= %d; i++) {\n", n-1)
		b.WriteString("    load_configuration(i);\n")
		b.WriteString("    for (j = 0; j <= I_sw - 1; j++) {\n")
		b.WriteString("        load_block(j, INTERMEDIATE_INPUT, config[i]);\n")
		b.WriteString("        send_start_signal();\n")
		b.WriteString("        wait_finish_signal();\n")
		b.WriteString("        read_block(j, INTERMEDIATE_OUTPUT, config[i]);\n")
		b.WriteString("    }\n")
		b.WriteString("}\n")
	}
	return b.String()
}

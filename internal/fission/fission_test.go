package fission

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/dfg"
	"repro/internal/hls"
	"repro/internal/jpeg"
)

// dctSetup partitions the DCT graph the way the paper's ILP does
// (16 T1 | 8 T2 | 8 T2) without re-running the solver.
func dctSetup(t *testing.T) (*dfg.Graph, []int) {
	t.Helper()
	g, err := jpeg.BuildDCTGraph(hls.XC4000Library(), hls.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int, g.NumTasks())
	for i := 0; i < g.NumTasks(); i++ {
		task := g.Task(i)
		switch {
		case task.Type == "T1":
			assign[i] = 0
		case strings.HasPrefix(task.Name, "T2_0") || strings.HasPrefix(task.Name, "T2_1"):
			assign[i] = 1
		default:
			assign[i] = 2
		}
	}
	return g, assign
}

// TestPaperMemoryAccounting reproduces Sec. 4's analysis: partition 1
// stores 32 words per computation (16 in + 16 out), partitions 2 and 3
// store 16 (8 + 8), and k = 64K / max(32,16,16) = 2048.
func TestPaperMemoryAccounting(t *testing.T) {
	g, assign := dctSetup(t)
	a, err := Analyze(g, assign, 3, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	if a.In[0] != 16 || a.Out[0] != 16 {
		t.Errorf("partition 1 in/out = %d/%d, want 16/16", a.In[0], a.Out[0])
	}
	if a.MTemp[0] != 32 || a.MTemp[1] != 16 || a.MTemp[2] != 16 {
		t.Errorf("m_temp = %v, want [32 16 16]", a.MTemp)
	}
	if a.K != 2048 {
		t.Errorf("k = %d, want 2048", a.K)
	}
	// 32 is already a power of two: no wastage, same k.
	if a.KPow2 != 2048 || a.WastagePerBlock != 0 {
		t.Errorf("pow2: k=%d wastage=%d, want 2048/0", a.KPow2, a.WastagePerBlock)
	}
}

func TestFDHPlanMatchesPaperOverheads(t *testing.T) {
	g, assign := dctSetup(t)
	board := arch.PaperXC4044Board()
	a, err := Analyze(g, assign, 3, board.Memory.Words)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's largest image: 245,760 blocks -> I_sw = 120.
	p, err := NewPlan(a, board, FDH, 245760, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.Isw != 120 {
		t.Errorf("I_sw = %d, want 120", p.Isw)
	}
	if p.Reconfigurations != 3*120 {
		t.Errorf("reconfigurations = %d, want 360", p.Reconfigurations)
	}
	if p.ReconfigNS != 360*100*arch.Millisecond {
		t.Errorf("reconfig overhead = %g ns, want 36 s", p.ReconfigNS)
	}
	// FDH moves only environment data: 16 in + 16 out per computation.
	if p.TransferWords != 32*245760 {
		t.Errorf("transfer words = %d, want %d", p.TransferWords, 32*245760)
	}
}

func TestIDHPlanOverheads(t *testing.T) {
	g, assign := dctSetup(t)
	board := arch.PaperXC4044Board()
	a, _ := Analyze(g, assign, 3, board.Memory.Words)
	p, err := NewPlan(a, board, IDH, 245760, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.Reconfigurations != 3 {
		t.Errorf("reconfigurations = %d, want 3", p.Reconfigurations)
	}
	// IDH moves every partition's in+out: 64 words per computation.
	if p.TransferWords != 64*245760 {
		t.Errorf("transfer words = %d, want %d", p.TransferWords, 64*245760)
	}
	if p.ReconfigNS != 3*100*arch.Millisecond {
		t.Errorf("reconfig overhead = %g", p.ReconfigNS)
	}
	// IDH reconfiguration overhead must be far below FDH's for large I.
	fdh, _ := NewPlan(a, board, FDH, 245760, false)
	if p.ReconfigNS >= fdh.ReconfigNS {
		t.Error("IDH should reconfigure less than FDH")
	}
}

func TestSmallIUsesPartialBatch(t *testing.T) {
	g, assign := dctSetup(t)
	board := arch.PaperXC4044Board()
	a, _ := Analyze(g, assign, 3, board.Memory.Words)
	p, err := NewPlan(a, board, FDH, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 100 || p.Isw != 1 {
		t.Errorf("I<k should clamp: k=%d Isw=%d", p.K, p.Isw)
	}
	z, err := NewPlan(a, board, IDH, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if z.Isw != 0 || z.ReconfigNS != 0 {
		t.Errorf("I=0 plan not empty: %+v", z)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	g := dfg.New("g")
	g.MustAddTask(dfg.Task{Name: "a", ReadEnv: 100, WriteEnv: 100})
	if _, err := Analyze(g, []int{0}, 0, 100); !errors.Is(err, ErrNoPartitions) {
		t.Errorf("err = %v, want ErrNoPartitions", err)
	}
	if _, err := Analyze(g, []int{0}, 1, 100); !errors.Is(err, ErrNoMemory) {
		t.Errorf("err = %v, want ErrNoMemory (200 words in 100)", err)
	}
	if _, err := Analyze(g, []int{}, 1, 100); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := Analyze(g, []int{7}, 1, 1000); err == nil {
		t.Error("out-of-range partition accepted")
	}
}

func TestZeroTrafficGraph(t *testing.T) {
	g := dfg.New("g")
	g.MustAddTask(dfg.Task{Name: "a"})
	a, err := Analyze(g, []int{0}, 1, 512)
	if err != nil {
		t.Fatal(err)
	}
	if a.K != 512 {
		t.Errorf("k = %d, want memory-capped 512", a.K)
	}
}

func TestFanOutCountedOnce(t *testing.T) {
	// One producer feeding three consumers in a later partition stores its
	// value once, not three times.
	g := dfg.New("fan")
	g.MustAddTask(dfg.Task{Name: "p"})
	for _, n := range []string{"c1", "c2", "c3"} {
		g.MustAddTask(dfg.Task{Name: n})
		g.MustAddEdge("p", n, 2)
	}
	a, err := Analyze(g, []int{0, 1, 1, 1}, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Out[0] != 2 {
		t.Errorf("producer out = %d, want 2 (payload once)", a.Out[0])
	}
	if a.In[1] != 2 {
		t.Errorf("consumer partition in = %d, want 2", a.In[1])
	}
}

func TestFanOutAcrossTwoPartitions(t *testing.T) {
	// Consumers in two different later partitions each read the stored
	// value: it counts once per consuming partition.
	g := dfg.New("fan2")
	g.MustAddTask(dfg.Task{Name: "p"})
	g.MustAddTask(dfg.Task{Name: "c1"})
	g.MustAddTask(dfg.Task{Name: "c2"})
	g.MustAddEdge("p", "c1", 4)
	g.MustAddEdge("p", "c2", 4)
	a, err := Analyze(g, []int{0, 1, 2}, 3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Out[0] != 4 || a.In[1] != 4 || a.In[2] != 4 {
		t.Errorf("out0/in1/in2 = %d/%d/%d, want 4/4/4", a.Out[0], a.In[1], a.In[2])
	}
}

func TestBreakEven(t *testing.T) {
	board := arch.PaperXC4044Board()
	// Paper: static 16000 ns/block; our RTR 9600 ns/block; N=3.
	// Break-even = ceil(3 * 100 ms / 6400 ns) = 46875.
	be := BreakEvenComputations(board, 3, 16000, 9600)
	if be != 46875 {
		t.Errorf("break-even = %g, want 46875", be)
	}
	// With the paper's RTR estimate (8440 ns) it is ~35.5k-40k.
	bePaper := BreakEvenComputations(board, 3, 16000, 8440)
	if bePaper < 35000 || bePaper > 45000 {
		t.Errorf("paper-number break-even = %g, want ~39.7k (paper reports 42,553)", bePaper)
	}
	if !math.IsInf(BreakEvenComputations(board, 3, 100, 200), 1) {
		t.Error("slower RTR design must never break even")
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 31: 32, 32: 32, 33: 64, 1000: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestPow2BlockRounding(t *testing.T) {
	// m_temp = 33 -> block 64, wastage 31, k = 1024/64 = 16 (vs exact 31).
	g := dfg.New("g")
	g.MustAddTask(dfg.Task{Name: "a", ReadEnv: 30, WriteEnv: 3})
	a, err := Analyze(g, []int{0}, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxMTemp != 33 || a.BlockWords != 64 {
		t.Fatalf("m_temp=%d block=%d, want 33/64", a.MaxMTemp, a.BlockWords)
	}
	if a.K != 31 || a.KPow2 != 16 || a.WastagePerBlock != 31 {
		t.Errorf("k=%d kPow2=%d wastage=%d, want 31/16/31", a.K, a.KPow2, a.WastagePerBlock)
	}
}

func TestSequencerCodeShape(t *testing.T) {
	fdh := SequencerCode(FDH, 3)
	idh := SequencerCode(IDH, 3)
	// FDH: outer loop over batches, inner over configurations.
	if !strings.Contains(fdh, "for (j = 0; j <= I_sw - 1; j++)") ||
		!strings.Contains(fdh, "for (i = 0; i <= 2; i++)") {
		t.Errorf("FDH sequencer malformed:\n%s", fdh)
	}
	if strings.Index(fdh, "j++") > strings.Index(fdh, "i++") {
		t.Error("FDH must iterate configurations inside the batch loop")
	}
	// IDH: outer loop over configurations, inner over batches.
	if strings.Index(idh, "i++") > strings.Index(idh, "j++") {
		t.Error("IDH must iterate batches inside the configuration loop")
	}
	if !strings.Contains(idh, "INTERMEDIATE_OUTPUT") {
		t.Error("IDH must read intermediate output per batch")
	}
	if s := FDH.String(); s != "FDH" {
		t.Errorf("FDH.String() = %q", s)
	}
	if s := IDH.String(); s != "IDH" {
		t.Errorf("IDH.String() = %q", s)
	}
}

package main

import (
	"encoding/json"
	"testing"

	"repro/internal/arch"
	"repro/internal/dfg"
	"repro/internal/listpart"
)

func TestGenerateKinds(t *testing.T) {
	for _, kind := range []string{"chain", "tree", "layered", "dct"} {
		g, err := generate(kind, 12, 3, 40, 100)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: invalid graph: %v", kind, err)
		}
		if g.NumTasks() == 0 {
			t.Errorf("%s: empty graph", kind)
		}
		// Round trip through the JSON schema consumed by sparcs.
		data, err := json.Marshal(g)
		if err != nil {
			t.Fatal(err)
		}
		var g2 dfg.Graph
		if err := json.Unmarshal(data, &g2); err != nil {
			t.Fatalf("%s: decode: %v", kind, err)
		}
		if g2.NumTasks() != g.NumTasks() {
			t.Errorf("%s: JSON round trip lost tasks", kind)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := generate("nope", 4, 1, 10, 10); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := generate("chain", 0, 1, 10, 10); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestChainShape(t *testing.T) {
	g, err := generate("chain", 5, 1, 30, 100)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 5 || g.NumEdges() != 4 {
		t.Errorf("chain: %d tasks, %d edges", g.NumTasks(), g.NumEdges())
	}
	if len(g.Roots()) != 1 || len(g.Leaves()) != 1 {
		t.Error("chain must have one root and one leaf")
	}
}

func TestTreeShape(t *testing.T) {
	g, err := generate("tree", 8, 1, 20, 50)
	if err != nil {
		t.Fatal(err)
	}
	// 8 leaves + 4 + 2 + 1 reducers = 15.
	if g.NumTasks() != 15 {
		t.Errorf("tree tasks = %d, want 15", g.NumTasks())
	}
	if len(g.Leaves()) != 1 {
		t.Errorf("tree must reduce to one sink, got %d", len(g.Leaves()))
	}
}

// TestGeneratedGraphsPartition: every generated family flows through the
// greedy partitioner on a small board.
func TestGeneratedGraphsPartition(t *testing.T) {
	board := arch.SmallTestBoard()
	board.FPGA.CLBs = 120
	for _, kind := range []string{"chain", "tree", "layered"} {
		g, err := generate(kind, 10, 7, 40, 80)
		if err != nil {
			t.Fatal(err)
		}
		p, err := listpart.Solve(g, board, 0)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if p.N < 1 {
			t.Errorf("%s: no partitions", kind)
		}
	}
}

// Command tgen generates synthetic DSP task graphs in the JSON schema
// consumed by cmd/sparcs. Supported families:
//
//	chain    a linear pipeline of n tasks
//	tree     a reduction tree with n leaves
//	layered  a random layered DAG (the shape of typical DSP data flows)
//	dct      the paper's Fig. 8 DCT graph (via the HLS estimator)
//
// Example:
//
//	tgen -kind layered -n 24 -seed 7 > graph.json
//	sparcs -graph graph.json -board small
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/dfg"
	"repro/internal/hls"
	"repro/internal/jpeg"
)

func main() {
	var (
		kind = flag.String("kind", "layered", "graph family: chain, tree, layered, dct")
		n    = flag.Int("n", 16, "task count (chain/layered) or leaf count (tree)")
		seed = flag.Int64("seed", 1, "random seed (layered)")
		res  = flag.Int("res", 40, "base task resource cost (CLBs)")
		del  = flag.Float64("delay", 100, "base task delay (ns)")
	)
	flag.Parse()
	g, err := generate(*kind, *n, *seed, *res, *del)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tgen:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(g); err != nil {
		fmt.Fprintln(os.Stderr, "tgen:", err)
		os.Exit(1)
	}
}

func generate(kind string, n int, seed int64, res int, delay float64) (*dfg.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("n must be >= 1, got %d", n)
	}
	switch kind {
	case "chain":
		return chain(n, res, delay), nil
	case "tree":
		return tree(n, res, delay)
	case "layered":
		return layered(n, seed, res, delay), nil
	case "dct":
		return jpeg.BuildDCTGraph(hls.XC4000Library(), hls.Constraints{})
	}
	return nil, fmt.Errorf("unknown kind %q", kind)
}

func chain(n, res int, delay float64) *dfg.Graph {
	g := dfg.New("chain")
	prev := ""
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("t%d", i)
		g.MustAddTask(dfg.Task{
			Name: name, Type: "stage", Resources: res, Delay: delay,
			ReadEnv: boolToInt(i == 0), WriteEnv: boolToInt(i == n-1),
		})
		if prev != "" {
			g.MustAddEdge(prev, name, 1)
		}
		prev = name
	}
	return g
}

func tree(leaves, res int, delay float64) (*dfg.Graph, error) {
	g := dfg.New("tree")
	level := make([]string, leaves)
	for i := range level {
		name := fmt.Sprintf("leaf%d", i)
		g.MustAddTask(dfg.Task{Name: name, Type: "leaf", Resources: res, Delay: delay, ReadEnv: 1})
		level[i] = name
	}
	depth := 0
	for len(level) > 1 {
		depth++
		var next []string
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				continue
			}
			name := fmt.Sprintf("red%d_%d", depth, i/2)
			g.MustAddTask(dfg.Task{Name: name, Type: "reduce", Resources: res, Delay: delay})
			g.MustAddEdge(level[i], name, 1)
			g.MustAddEdge(level[i+1], name, 1)
			next = append(next, name)
		}
		level = next
	}
	g.Task(g.TaskByName(level[0])).WriteEnv = 1
	return g, nil
}

func layered(n int, seed int64, res int, delay float64) *dfg.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := dfg.New(fmt.Sprintf("layered%d", seed))
	var prev []string
	made := 0
	layer := 0
	for made < n {
		width := 1 + rng.Intn(4)
		if made+width > n {
			width = n - made
		}
		var cur []string
		for w := 0; w < width; w++ {
			name := fmt.Sprintf("l%d_%d", layer, w)
			g.MustAddTask(dfg.Task{
				Name: name, Type: fmt.Sprintf("L%d", layer),
				Resources: res/2 + rng.Intn(res),
				Delay:     delay/2 + float64(rng.Intn(int(delay))),
				ReadEnv:   boolToInt(layer == 0),
			})
			cur = append(cur, name)
			made++
		}
		for _, c := range cur {
			if len(prev) == 0 {
				continue
			}
			// At least one predecessor to keep the graph connected.
			p := prev[rng.Intn(len(prev))]
			g.MustAddEdge(p, c, 1+rng.Intn(4))
			for _, q := range prev {
				if q != p && rng.Intn(3) == 0 {
					g.MustAddEdge(q, c, 1+rng.Intn(4))
				}
			}
		}
		prev = cur
		layer++
	}
	for _, name := range prev {
		g.Task(g.TaskByName(name)).WriteEnv = 1
	}
	return g
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Command sweep generalizes the paper's XC6000 conjecture: it sweeps the
// reconfiguration time CT and the host-link word transfer delay D_sv and
// reports the IDH-over-static improvement for the DCT case study, plus the
// image size at which the RTR design starts winning (the crossover).
//
// Output is CSV: ct_ms, dsv_ns, improvement_pct_at_245760, crossover_blocks.
//
//	go run ./cmd/sweep > sweep.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fission"
	"repro/internal/hls"
	"repro/internal/jpeg"
	"repro/internal/sim"
)

func main() {
	var (
		iMax     = flag.Int("I", 245760, "computation count for the improvement column")
		strategy = flag.String("strategy", "idh", "sequencing strategy: fdh or idh")
	)
	flag.Parse()
	if err := run(*iMax, *strategy); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

var ctsMS = []float64{0.1, 0.5, 1, 5, 10, 50, 100, 500}
var dsvsNS = []float64{0, 30, 60, 120, 240}

func run(iMax int, stratArg string) error {
	var strategy fission.Strategy
	switch stratArg {
	case "fdh":
		strategy = fission.FDH
	case "idh":
		strategy = fission.IDH
	default:
		return fmt.Errorf("unknown strategy %q", stratArg)
	}

	g, err := jpeg.BuildDCTGraph(hls.XC4000Library(), hls.Constraints{})
	if err != nil {
		return err
	}
	d, err := core.Build(g, core.DefaultConfig())
	if err != nil {
		return err
	}
	st, err := hls.SynthesizeStatic(jpeg.StaticDCTBehaviors(), jpeg.StaticAllocation(),
		hls.XC4000Library(), hls.Constraints{})
	if err != nil {
		return err
	}
	rtr := sim.RTRDesign{Partitions: d.Timings, Analysis: d.Fission}

	fmt.Println("ct_ms,dsv_ns,improvement_pct,crossover_blocks")
	for _, ctMS := range ctsMS {
		for _, dsv := range dsvsNS {
			board := arch.PaperXC4044Board()
			board.FPGA.ReconfigTime = ctMS * arch.Millisecond
			board.Link.WordTransferNS = dsv
			static := sim.StaticDesign{
				BodyCycles: st.Cycles, ClockNS: st.ClockNS,
				InWords: 16, OutWords: 16,
				BatchK: board.Memory.Words / d.Fission.MaxMTemp,
			}
			sRes, err := sim.SimulateStatic(static, board, iMax, sim.Options{TraceCap: -1})
			if err != nil {
				return err
			}
			rRes, err := sim.SimulateRTR(rtr, board, strategy, iMax, sim.Options{TraceCap: -1})
			if err != nil {
				return err
			}
			imp := 100 * sim.Improvement(sRes.TotalNS, rRes.TotalNS)
			cross := crossover(rtr, static, board, strategy, iMax)
			fmt.Printf("%g,%g,%.1f,%s\n", ctMS, dsv, imp, cross)
		}
	}
	return nil
}

// crossover binary-searches the smallest block count at which the RTR
// design beats the static design; "-" when it never does within iMax.
func crossover(rtr sim.RTRDesign, static sim.StaticDesign, board arch.Board,
	strategy fission.Strategy, iMax int) string {

	wins := func(i int) bool {
		s, err := sim.SimulateStatic(static, board, i, sim.Options{TraceCap: -1})
		if err != nil {
			return false
		}
		r, err := sim.SimulateRTR(rtr, board, strategy, i, sim.Options{TraceCap: -1})
		if err != nil {
			return false
		}
		return r.TotalNS < s.TotalNS
	}
	if !wins(iMax) {
		return "-"
	}
	lo, hi := 1, iMax
	for lo < hi {
		mid := (lo + hi) / 2
		if wins(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return fmt.Sprintf("%d", lo)
}

package main

import "testing"

func TestRunSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the ILP and ~80 crossover searches; skipped in -short mode")
	}
	if err := run(245760, "idh"); err != nil {
		t.Fatal(err)
	}
}

func TestRunSweepBadStrategy(t *testing.T) {
	if err := run(100, "nope"); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestCrossoverMonotone(t *testing.T) {
	// wins(i) in the real model is monotone in i for IDH; the binary
	// search assumes it. Covered indirectly by TestRunSweep; here just
	// guard the "-" path cheaply via a tiny iMax.
	if testing.Short() {
		t.Skip()
	}
	if err := run(512, "fdh"); err != nil {
		t.Fatal(err)
	}
}

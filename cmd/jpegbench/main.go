// Command jpegbench regenerates the paper's evaluation (Sec. 4): the DCT
// execution times of the static co-design versus the run-time reconfigured
// co-design under the FDH strategy (Table 1) and the IDH strategy
// (Table 2), the break-even analysis, and the XC6000 conjecture.
//
// Columns mirror the paper's tables: image size (4x4 DCT blocks), the
// software loop count I_sw, and total DCT time for the static and RTR
// designs. The paper does not preserve row file names; sizes descend to the
// paper's explicitly reported largest image (245,760 blocks).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fission"
	"repro/internal/hls"
	"repro/internal/jpeg"
	"repro/internal/sim"
)

func main() {
	var (
		dsv      = flag.Float64("dsv", 0, "override D_sv (ns/word); 0 keeps the board default")
		paperT   = flag.Bool("paper-timings", false, "use the paper's reported cycle counts (68/36/36 @ 50/70/70, static 160 @ 100) instead of our synthesized ones")
		showPlan = flag.Bool("plan", false, "print the design report and sequencers before the tables")
	)
	flag.Parse()
	if err := run(*dsv, *paperT, *showPlan); err != nil {
		fmt.Fprintln(os.Stderr, "jpegbench:", err)
		os.Exit(1)
	}
}

// Sizes descend like the paper's tables; the largest is the paper's
// explicit 245,760-block image (the "XV file").
var sizes = []int{245760, 122880, 61440, 30720, 15360, 7680, 3840}

func run(dsvOverride float64, paperTimings, showPlan bool) error {
	board := arch.PaperXC4044Board()
	if dsvOverride > 0 {
		board.Link.WordTransferNS = dsvOverride
	}

	g, err := jpeg.BuildDCTGraph(hls.XC4000Library(), hls.Constraints{})
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.Board = board
	d, err := core.Build(g, cfg)
	if err != nil {
		return err
	}

	rtr := sim.RTRDesign{Partitions: d.Timings, Analysis: d.Fission}
	st, err := hls.SynthesizeStatic(jpeg.StaticDCTBehaviors(), jpeg.StaticAllocation(),
		hls.XC4000Library(), hls.Constraints{})
	if err != nil {
		return err
	}
	static := sim.StaticDesign{
		BodyCycles: st.Cycles, ClockNS: st.ClockNS,
		InWords: 16, OutWords: 16,
		BatchK: board.Memory.Words / d.Fission.MaxMTemp,
	}
	if paperTimings {
		rtr.Partitions = []sim.PartitionTiming{
			{BodyCycles: 68, ClockNS: 50},
			{BodyCycles: 36, ClockNS: 70},
			{BodyCycles: 36, ClockNS: 70},
		}
		static.BodyCycles = 160
		static.ClockNS = 100
	}

	if showPlan {
		fmt.Print(d.Report())
		fmt.Println()
		fmt.Print(fission.SequencerCode(fission.FDH, d.Fission.N))
		fmt.Println()
		fmt.Print(fission.SequencerCode(fission.IDH, d.Fission.N))
		fmt.Println()
	}

	perBlockStatic := (float64(static.BodyCycles) + 1) * static.ClockNS
	perBlockRTR := 0.0
	for _, p := range rtr.Partitions {
		perBlockRTR += p.PerComputationNS()
	}
	fmt.Printf("per 4x4 block: static %.0f ns, RTR %.0f ns (paper: 16000 vs 8440)\n",
		perBlockStatic, perBlockRTR)
	fmt.Printf("k = %d computations per run (paper: 2048); D_sv = %.0f ns/word\n\n",
		d.Fission.K, board.Link.WordTransferNS)

	fmt.Println("Table 1: DCT execution time, FDH strategy")
	table(rtr, static, board, fission.FDH)
	fmt.Println()
	fmt.Println("Table 2: DCT execution time, IDH strategy")
	table(rtr, static, board, fission.IDH)

	be := fission.BreakEvenComputations(board, d.Fission.N, perBlockStatic, perBlockRTR)
	fmt.Printf("\nbreak-even: %.0f blocks per batch (paper reports 42,553)\n", be)

	b6 := arch.XC6000Board()
	if dsvOverride > 0 {
		b6.Link.WordTransferNS = dsvOverride
	}
	s6, err := sim.SimulateStatic(static, b6, sizes[0], sim.Options{TraceCap: -1})
	if err != nil {
		return err
	}
	r6, err := sim.SimulateRTR(rtr, b6, fission.IDH, sizes[0], sim.Options{TraceCap: -1})
	if err != nil {
		return err
	}
	fmt.Printf("XC6000 conjecture (CT=500 us): IDH improvement at %d blocks = %.1f%% (paper conjectures 47%%)\n",
		sizes[0], 100*sim.Improvement(s6.TotalNS, r6.TotalNS))
	return nil
}

func table(rtr sim.RTRDesign, static sim.StaticDesign, board arch.Board, strategy fission.Strategy) {
	fmt.Printf("  %-8s %6s %12s %12s %12s\n", "blocks", "I_sw", "static (s)", "RTR (s)", "improvement")
	fmt.Println("  " + strings.Repeat("-", 56))
	k := rtr.Analysis.K
	for _, I := range sizes {
		s, err := sim.SimulateStatic(static, board, I, sim.Options{TraceCap: -1})
		if err != nil {
			fmt.Println("  error:", err)
			return
		}
		r, err := sim.SimulateRTR(rtr, board, strategy, I, sim.Options{TraceCap: -1})
		if err != nil {
			fmt.Println("  error:", err)
			return
		}
		isw := (I + k - 1) / k
		fmt.Printf("  %-8d %6d %12.3f %12.3f %11.1f%%\n",
			I, isw, s.TotalNS/arch.Second, r.TotalNS/arch.Second,
			100*sim.Improvement(s.TotalNS, r.TotalNS))
	}
}

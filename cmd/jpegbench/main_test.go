package main

import "testing"

func TestRunDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the ILP; skipped in -short mode")
	}
	if err := run(0, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunPaperTimings(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the ILP; skipped in -short mode")
	}
	if err := run(60, true, true); err != nil {
		t.Fatal(err)
	}
}

// Command sparcs runs the full temporal partitioning and loop fission flow
// on a task graph: read a graph (JSON from cmd/tgen or hand-written, or the
// built-in DCT case study), partition it for a target board, analyze loop
// fission, and simulate the resulting RTR design.
//
// Usage:
//
//	sparcs -graph dct -I 245760 -strategy idh
//	sparcs -graph mygraph.json -board xc6000 -partitioner list -I 10000
//	sparcs -graph dct -verilog    # dump partition RTL
//	sparcs -graph dct -dot        # dump the task graph in Graphviz format
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/fission"
	"repro/internal/hls"
	"repro/internal/jpeg"
	"repro/internal/lp"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/tempart"
)

func main() {
	var (
		graphArg   = flag.String("graph", "dct", "task graph: 'dct' or a JSON file path")
		boardArg   = flag.String("board", "paper", "board preset: "+strings.Join(arch.Presets(), ", "))
		partArg    = flag.String("partitioner", "ilp", "partitioner: ilp or list")
		stratArg   = flag.String("strategy", "idh", "sequencing strategy: fdh or idh")
		iArg       = flag.Int("I", 2048, "total computations (outer loop count)")
		pow2Arg    = flag.Bool("pow2", false, "use power-of-two memory blocks")
		dotArg     = flag.Bool("dot", false, "print the task graph in DOT format and exit")
		verilogArg = flag.Bool("verilog", false, "print partition RTL after the flow")
		seqArg     = flag.Bool("sequencer", false, "print the host sequencer code")
		traceArg   = flag.Int("trace", 0, "print the first N simulation trace events")
		workersArg = flag.Int("workers", 1, "parallel B&B search workers (ilp partitioner)")
		specArg    = flag.Int("speculate", 1, "concurrent partition-count probes in the relax-N loop")
		priceArg   = flag.String("pricing", "devex", "dual simplex pricing rule: devex or steepest-edge")
		formArg    = flag.String("formulation", "rows", "ILP model: rows (assignment variables) or patterns (branch-and-price)")
		maxPartArg = flag.Int("max-partitions", 0, "cap on the partition count search (0 = the solver's default window)")
		outArg     = flag.String("o", "text", "output format: text, or json (the machine-readable service payload; skips simulation)")
	)
	flag.Parse()

	if err := run(cliOptions{
		Graph: *graphArg, Board: *boardArg, Partitioner: *partArg,
		Strategy: *stratArg, I: *iArg, Pow2: *pow2Arg, DOT: *dotArg,
		Verilog: *verilogArg, Sequencer: *seqArg, Trace: *traceArg,
		Workers: *workersArg, SpeculateN: *specArg, Output: *outArg,
		Pricing: *priceArg, Formulation: *formArg, MaxPartitions: *maxPartArg,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "sparcs:", err)
		os.Exit(1)
	}
}

// cliOptions bundles the command-line flags so run stays callable (and
// readable) from tests as new flags accumulate.
type cliOptions struct {
	Graph, Board, Partitioner, Strategy string
	I                                   int
	Pow2, DOT, Verilog, Sequencer       bool
	Trace, Workers, SpeculateN          int
	// Output selects "text" (the human report + simulation) or "json"
	// (the exact internal/service Result payload, solve only).
	Output string
	// Pricing selects the dual simplex pricing rule ("", "devex", or
	// "steepest-edge") for the ilp partitioner.
	Pricing string
	// Formulation selects the ilp partitioner's model: "" or "rows" for
	// the assignment-variable row model, "patterns" for branch-and-price
	// over partition-pattern columns.
	Formulation string
	// MaxPartitions caps the relax-N search (0 = the solver's default
	// window above the combinatorial lower bound).
	MaxPartitions int
}

func run(o cliOptions) error {
	board, err := arch.BoardByName(o.Board)
	if err != nil {
		return err
	}
	g, err := loadGraph(o.Graph)
	if err != nil {
		return err
	}
	if o.DOT {
		fmt.Print(g.DOT())
		return nil
	}

	cfg := core.DefaultConfig()
	cfg.Board = board
	cfg.Pow2Blocks = o.Pow2
	cfg.ILP.Workers = o.Workers
	cfg.SpeculateN = o.SpeculateN
	switch o.Pricing {
	case "", "devex":
	case "steepest-edge":
		cfg.ILP.Pricing = lp.PricingSteepestEdge
	default:
		return fmt.Errorf("unknown pricing %q (want devex or steepest-edge)", o.Pricing)
	}
	switch o.Formulation {
	case "", "rows":
		cfg.Formulation = tempart.FormulationRows
	case "patterns":
		cfg.Formulation = tempart.FormulationPatterns
	default:
		return fmt.Errorf("unknown formulation %q (want rows or patterns)", o.Formulation)
	}
	if o.MaxPartitions < 0 {
		return fmt.Errorf("negative -max-partitions %d", o.MaxPartitions)
	}
	cfg.MaxPartitions = o.MaxPartitions
	switch o.Partitioner {
	case "ilp":
		cfg.Partitioner = core.ILPPartitioner
	case "list":
		cfg.Partitioner = core.ListPartitioner
	default:
		return fmt.Errorf("unknown partitioner %q", o.Partitioner)
	}
	switch o.Strategy {
	case "fdh":
		cfg.Strategy = fission.FDH
	case "idh":
		cfg.Strategy = fission.IDH
	default:
		return fmt.Errorf("unknown strategy %q", o.Strategy)
	}

	switch o.Output {
	case "", "text":
	case "json":
	default:
		return fmt.Errorf("unknown output format %q (want text or json)", o.Output)
	}

	d, err := core.Build(g, cfg)
	if err != nil {
		return err
	}
	if o.Output == "json" {
		// Machine-readable mode: emit exactly the payload the sparcsd
		// service returns for this solve, so CLI consumers and HTTP
		// clients parse one schema.
		res := service.NewResult(g, board.Name, cfg.Partitioner.String(), d.Partitioning)
		res.SolveMS = float64(d.Partitioning.Stats.SolveTime.Microseconds()) / 1e3
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Print(d.Report())
	if d.Partitioning.N == 0 {
		return nil
	}
	st := d.Partitioning.Stats
	fmt.Printf("  solver: %d B&B nodes, %d LP pivots, build %v, solve %v\n",
		st.Nodes, st.LPIterations, st.BuildTime.Round(1e6), st.SolveTime.Round(1e6))
	if st.CutsAdded > 0 {
		fmt.Printf("  cuts: %d added over %d separation rounds\n", st.CutsAdded, st.SeparationRounds)
	}
	if st.Solver.Solves > 0 {
		fmt.Printf("  simplex: %d warm / %d cold solves, %d dual repair pivots\n",
			st.Solver.WarmSolves, st.Solver.ColdSolves, st.Solver.DualPivots)
	}

	res, err := d.Simulate(o.I, sim.Options{TraceCap: maxInt(o.Trace, 4096)})
	if err != nil {
		return err
	}
	fmt.Printf("\nsimulated %d computations under %s:\n", o.I, cfg.Strategy)
	fmt.Printf("  total    %14.3f ms\n", res.TotalNS/arch.Millisecond)
	fmt.Printf("  compute  %14.3f ms\n", res.ComputeNS/arch.Millisecond)
	fmt.Printf("  reconfig %14.3f ms (%d loads)\n", res.ReconfigNS/arch.Millisecond, res.Reconfigurations)
	fmt.Printf("  transfer %14.3f ms\n", res.TransferNS/arch.Millisecond)
	fmt.Printf("  handshake%14.3f ms\n", res.HandshakeNS/arch.Millisecond)

	if o.Trace > 0 {
		fmt.Println("\ntrace:")
		for i, ev := range res.Trace.Events {
			if i >= o.Trace {
				break
			}
			fmt.Printf("  %12.0f ns  %-9s config=%d batch=%d words=%d iters=%d\n",
				ev.StartNS, ev.Kind, ev.Config, ev.Batch, ev.Words, ev.Iter)
		}
	}
	if o.Sequencer {
		fmt.Println("\nhost sequencer:")
		fmt.Print(d.Sequencer)
	}
	if o.Verilog {
		nl, err := d.Netlists()
		if err != nil {
			return err
		}
		for p, n := range nl {
			if n == nil {
				fmt.Printf("\n// partition %d: no behavioral payload, RTL skipped\n", p+1)
				continue
			}
			fmt.Printf("\n// ----- partition %d -----\n", p+1)
			fmt.Print(n.Verilog())
		}
	}
	return nil
}

func loadGraph(arg string) (*dfg.Graph, error) {
	if arg == "dct" {
		return jpeg.BuildDCTGraph(hls.XC4000Library(), hls.Constraints{})
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return nil, err
	}
	var g dfg.Graph
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", arg, err)
	}
	return &g, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

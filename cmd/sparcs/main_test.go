package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dfg"
)

func TestLoadGraphDCT(t *testing.T) {
	g, err := loadGraph("dct")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 32 {
		t.Errorf("dct graph has %d tasks", g.NumTasks())
	}
}

func TestLoadGraphJSON(t *testing.T) {
	g := dfg.New("file")
	g.MustAddTask(dfg.Task{Name: "a", Resources: 10, Delay: 5})
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTasks() != 1 || got.Task(0).Name != "a" {
		t.Errorf("loaded graph wrong: %d tasks", got.NumTasks())
	}
	if _, err := loadGraph(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunSmallGraph(t *testing.T) {
	g := dfg.New("g")
	g.MustAddTask(dfg.Task{Name: "a", Resources: 60, Delay: 50, ReadEnv: 1})
	g.MustAddTask(dfg.Task{Name: "b", Resources: 60, Delay: 70, WriteEnv: 1})
	g.MustAddEdge("a", "b", 2)
	data, _ := json.Marshal(g)
	path := filepath.Join(t.TempDir(), "g.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Exercise both partitioners and both strategies end to end.
	for _, part := range []string{"ilp", "list"} {
		for _, strat := range []string{"fdh", "idh"} {
			if err := run(path, "small", part, strat, 100, false, false, false, true, 3); err != nil {
				t.Fatalf("%s/%s: %v", part, strat, err)
			}
		}
	}
	// DOT mode.
	if err := run(path, "small", "ilp", "idh", 0, false, true, false, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadArgs(t *testing.T) {
	if err := run("dct", "nope-board", "ilp", "idh", 1, false, false, false, false, 0); err == nil {
		t.Error("unknown board accepted")
	}
	if err := run("dct", "small", "nope", "idh", 1, false, false, false, false, 0); err == nil {
		t.Error("unknown partitioner accepted")
	}
	if err := run("dct", "small", "ilp", "nope", 1, false, false, false, false, 0); err == nil {
		t.Error("unknown strategy accepted")
	}
}

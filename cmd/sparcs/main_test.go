package main

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dfg"
	"repro/internal/service"
)

func TestLoadGraphDCT(t *testing.T) {
	g, err := loadGraph("dct")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 32 {
		t.Errorf("dct graph has %d tasks", g.NumTasks())
	}
}

func TestLoadGraphJSON(t *testing.T) {
	g := dfg.New("file")
	g.MustAddTask(dfg.Task{Name: "a", Resources: 10, Delay: 5})
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTasks() != 1 || got.Task(0).Name != "a" {
		t.Errorf("loaded graph wrong: %d tasks", got.NumTasks())
	}
	if _, err := loadGraph(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunSmallGraph(t *testing.T) {
	g := dfg.New("g")
	g.MustAddTask(dfg.Task{Name: "a", Resources: 60, Delay: 50, ReadEnv: 1})
	g.MustAddTask(dfg.Task{Name: "b", Resources: 60, Delay: 70, WriteEnv: 1})
	g.MustAddEdge("a", "b", 2)
	data, _ := json.Marshal(g)
	path := filepath.Join(t.TempDir(), "g.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Exercise both partitioners and both strategies end to end.
	for _, part := range []string{"ilp", "list"} {
		for _, strat := range []string{"fdh", "idh"} {
			if err := run(cliOptions{Graph: path, Board: "small", Partitioner: part, Strategy: strat, I: 100, Sequencer: true, Trace: 3, Workers: 2, SpeculateN: 2}); err != nil {
				t.Fatalf("%s/%s: %v", part, strat, err)
			}
		}
	}
	// DOT mode.
	if err := run(cliOptions{Graph: path, Board: "small", Partitioner: "ilp", Strategy: "idh", DOT: true, Workers: 1, SpeculateN: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadArgs(t *testing.T) {
	if err := run(cliOptions{Graph: "dct", Board: "nope-board", Partitioner: "ilp", Strategy: "idh", I: 1}); err == nil {
		t.Error("unknown board accepted")
	}
	if err := run(cliOptions{Graph: "dct", Board: "small", Partitioner: "nope", Strategy: "idh", I: 1}); err == nil {
		t.Error("unknown partitioner accepted")
	}
	if err := run(cliOptions{Graph: "dct", Board: "small", Partitioner: "ilp", Strategy: "nope", I: 1}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

// TestRunJSONOutputMatchesServicePayload pins that `-o json` emits exactly
// the internal/service Result schema, with values matching a service solve
// of the same request — the contract that lets CLI and HTTP clients share
// one parser.
func TestRunJSONOutputMatchesServicePayload(t *testing.T) {
	g := dfg.New("g")
	g.MustAddTask(dfg.Task{Name: "a", Resources: 60, Delay: 50, ReadEnv: 1})
	g.MustAddTask(dfg.Task{Name: "b", Resources: 60, Delay: 70, WriteEnv: 1})
	g.MustAddEdge("a", "b", 2)
	data, _ := json.Marshal(g)
	path := filepath.Join(t.TempDir(), "g.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Capture stdout of the json run.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(cliOptions{Graph: path, Board: "small", Partitioner: "ilp",
		Strategy: "idh", I: 1, Output: "json"})
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}

	var cli service.Result
	if err := json.Unmarshal(out, &cli); err != nil {
		t.Fatalf("-o json is not the service payload: %v\n%s", err, out)
	}

	sr := service.SolveRequest{Graph: data, Board: "small"}
	req, err := sr.Parse()
	if err != nil {
		t.Fatal(err)
	}
	be, err := service.LookupBackend("ilp")
	if err != nil {
		t.Fatal(err)
	}
	part, err := be.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	svc := service.NewResult(req.Graph, req.BoardName, "ilp", part)
	if cli.N != svc.N || cli.LatencyNS != svc.LatencyNS || cli.Board != svc.Board ||
		cli.Engine != svc.Engine || cli.Optimal != svc.Optimal {
		t.Fatalf("CLI and service payloads diverge:\ncli: %+v\nsvc: %+v", cli, svc)
	}
	if len(cli.Partitions) != len(svc.Partitions) {
		t.Fatalf("partition lists diverge: %d vs %d", len(cli.Partitions), len(svc.Partitions))
	}
	for i := range cli.Partitions {
		if cli.Partitions[i].CLBs != svc.Partitions[i].CLBs ||
			cli.Partitions[i].DelayNS != svc.Partitions[i].DelayNS {
			t.Fatalf("partition %d diverges:\ncli: %+v\nsvc: %+v", i, cli.Partitions[i], svc.Partitions[i])
		}
	}
	// Unknown output format is rejected.
	if err := run(cliOptions{Graph: path, Board: "small", Partitioner: "ilp",
		Strategy: "idh", I: 1, Output: "yaml"}); err == nil {
		t.Error("unknown output format accepted")
	}
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dfg"
)

func TestLoadGraphDCT(t *testing.T) {
	g, err := loadGraph("dct")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 32 {
		t.Errorf("dct graph has %d tasks", g.NumTasks())
	}
}

func TestLoadGraphJSON(t *testing.T) {
	g := dfg.New("file")
	g.MustAddTask(dfg.Task{Name: "a", Resources: 10, Delay: 5})
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTasks() != 1 || got.Task(0).Name != "a" {
		t.Errorf("loaded graph wrong: %d tasks", got.NumTasks())
	}
	if _, err := loadGraph(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunSmallGraph(t *testing.T) {
	g := dfg.New("g")
	g.MustAddTask(dfg.Task{Name: "a", Resources: 60, Delay: 50, ReadEnv: 1})
	g.MustAddTask(dfg.Task{Name: "b", Resources: 60, Delay: 70, WriteEnv: 1})
	g.MustAddEdge("a", "b", 2)
	data, _ := json.Marshal(g)
	path := filepath.Join(t.TempDir(), "g.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Exercise both partitioners and both strategies end to end.
	for _, part := range []string{"ilp", "list"} {
		for _, strat := range []string{"fdh", "idh"} {
			if err := run(cliOptions{Graph: path, Board: "small", Partitioner: part, Strategy: strat, I: 100, Sequencer: true, Trace: 3, Workers: 2, SpeculateN: 2}); err != nil {
				t.Fatalf("%s/%s: %v", part, strat, err)
			}
		}
	}
	// DOT mode.
	if err := run(cliOptions{Graph: path, Board: "small", Partitioner: "ilp", Strategy: "idh", DOT: true, Workers: 1, SpeculateN: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadArgs(t *testing.T) {
	if err := run(cliOptions{Graph: "dct", Board: "nope-board", Partitioner: "ilp", Strategy: "idh", I: 1}); err == nil {
		t.Error("unknown board accepted")
	}
	if err := run(cliOptions{Graph: "dct", Board: "small", Partitioner: "nope", Strategy: "idh", I: 1}); err == nil {
		t.Error("unknown partitioner accepted")
	}
	if err := run(cliOptions{Graph: "dct", Board: "small", Partitioner: "ilp", Strategy: "nope", I: 1}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

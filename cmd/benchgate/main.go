// Command benchgate is the CI bench-regression gate: it compares a fresh
// benchmark run against the committed baseline and fails (exit 1) when a
// gated metric regresses by more than the threshold.
//
// Both inputs are `go test -json` streams as written by `make bench`
// (BENCH_<date>.json). Gated metrics, per benchmark present in both files:
//
//   - allocs/op:            higher is a regression (deterministic)
//   - B&B-nodes:            higher is a regression (deterministic search size)
//   - pivots/op:            higher is a regression (deterministic simplex work)
//   - refactorizations/op:  higher is a regression (basis reinversions the
//     Forrest–Tomlin update path failed to avoid)
//   - bound-flips/op:       lower is a regression (dual long steps absorbed
//     without a pivot)
//   - nodes/sec:    lower is a regression (search throughput; wall-clock
//     derived, so it carries machine noise — the deterministic counters
//     above are the machine-independent teeth of the gate)
//
// Metrics are only gated when both runs report a nonzero value (a solve
// the presolve fully fathoms legitimately reports zero nodes), so a
// benchmark that stops searching altogether never trips the gate. ns/op is
// printed for context but not gated: a single -benchtime 1x sample on a
// shared CI runner is too noisy for a hard wall-clock gate.
//
// Usage:
//
//	benchgate -old BENCH_20260728.json -new /tmp/bench.json [-threshold 0.20]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// testEvent is the subset of the `go test -json` event schema we need.
type testEvent struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// benchResult holds one benchmark's parsed metrics, keyed by unit
// ("ns/op", "allocs/op", "nodes/sec", ...).
type benchResult map[string]float64

// parseBenchFile groups the -json output lines per benchmark and parses the
// "value unit" pairs of each result line. Benchmark output may be split
// across several events (the runner flushes mid-line), so outputs are
// concatenated per test before parsing.
func parseBenchFile(path string) (map[string]benchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	outputs := map[string]*strings.Builder{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev testEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON noise
		}
		if ev.Action != "output" || ev.Test == "" || !strings.HasPrefix(ev.Test, "Benchmark") {
			continue
		}
		b, ok := outputs[ev.Test]
		if !ok {
			b = &strings.Builder{}
			outputs[ev.Test] = b
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	results := map[string]benchResult{}
	for name, b := range outputs {
		if r := parseBenchOutput(b.String()); len(r) > 0 {
			results[name] = r
		}
	}
	return results, nil
}

// parseBenchOutput extracts "value unit" pairs from a benchmark result
// line like
//
//	BenchmarkX  \t 1 \t 123456 ns/op \t 37.00 B&B-nodes \t 97088 B/op \t 1154 allocs/op
func parseBenchOutput(s string) benchResult {
	fields := strings.Fields(s)
	r := benchResult{}
	for i := 0; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		if strings.HasPrefix(unit, "Benchmark") || unit == "PASS" || unit == "ok" {
			continue
		}
		// The iteration count has no unit token after it that looks like a
		// unit; only keep pairs whose unit contains a non-numeric rune.
		if _, err := strconv.ParseFloat(unit, 64); err == nil {
			continue
		}
		if _, dup := r[unit]; !dup {
			r[unit] = v
		}
		i++
	}
	return r
}

// gate describes one gated metric.
type gate struct {
	unit        string
	higherIsBad bool
}

var gates = []gate{
	{"allocs/op", true},
	{"B&B-nodes", true},
	{"pivots/op", true},
	// Basis reinversions: the Forrest–Tomlin update path exists to keep
	// these rare, so a count increase means the update/refactor policy (or
	// update stability) regressed. Deterministic.
	{"refactorizations/op", true},
	// Dual long-step bound flips: infeasibility absorbed without a pivot.
	// Fewer flips on the same search means the ratio test stopped taking
	// long steps — gated like a throughput metric (lower is a regression).
	{"bound-flips/op", false},
	{"nodes/sec", false},
}

// thresholdOverrides tightens the gate for specific (benchmark, unit)
// pairs. The FIR bank is the headline branch-and-cut benchmark and the
// pack portfolio is the headline infeasibility-proof regime: their node
// counts are deterministic and the cut/proof engines exist to shrink
// them, so ANY node-count growth over the committed baseline fails the
// gate (threshold 0), not just the default 20%.
var thresholdOverrides = map[string]map[string]float64{
	"BenchmarkILP_FIRBank":  {"B&B-nodes": 0},
	"BenchmarkILP_Pack12":   {"B&B-nodes": 0},
	"BenchmarkILP_Pack15":   {"B&B-nodes": 0},
	"BenchmarkILP_Pack18":   {"B&B-nodes": 0},
	"BenchmarkILP_Pack2638": {"B&B-nodes": 0},
}

// gateMetric computes the relative regression of one metric and whether it
// trips the gate (per-benchmark overrides tighten the default threshold).
func gateMetric(name string, g gate, ov, nv, threshold float64) (reg float64, bad bool) {
	if g.higherIsBad {
		reg = nv/ov - 1
	} else {
		reg = ov/nv - 1
	}
	if tight, ok := thresholdOverrides[name][g.unit]; ok {
		threshold = tight
	}
	return reg, reg > threshold
}

func main() {
	oldPath := flag.String("old", "", "baseline go test -json bench file (committed BENCH_<date>.json)")
	newPath := flag.String("new", "", "fresh go test -json bench file to check")
	threshold := flag.Float64("threshold", 0.20, "relative regression threshold")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -old and -new are required")
		os.Exit(2)
	}
	oldRes, err := parseBenchFile(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	newRes, err := parseBenchFile(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(newRes))
	for name := range newRes {
		if _, ok := oldRes[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no common benchmarks between baseline and fresh run")
		os.Exit(2)
	}

	failed := false
	for _, name := range names {
		o, n := oldRes[name], newRes[name]
		for _, g := range gates {
			ov, okO := o[g.unit]
			nv, okN := n[g.unit]
			if !okO || !okN {
				continue
			}
			if g.higherIsBad && ov == 0 && nv > 0 {
				// A deterministic counter springing from zero is an
				// unbounded relative regression: a search that the presolve
				// used to fathom completely has started exploring again.
				fmt.Printf("%-36s %-12s old=%-14.4g new=%-14.4g   +inf%%  REGRESSION\n",
					name, g.unit, ov, nv)
				failed = true
				continue
			}
			if ov == 0 || nv == 0 {
				// Remaining zero cases carry no gateable ratio: a metric
				// dropping to zero is an improvement for the higher-is-bad
				// counters, and nodes/sec is meaningless without nodes.
				continue
			}
			reg, bad := gateMetric(name, g, ov, nv, *threshold)
			status := "ok"
			if bad {
				status = "REGRESSION"
				failed = true
			}
			fmt.Printf("%-36s %-12s old=%-14.4g new=%-14.4g %+6.1f%%  %s\n",
				name, g.unit, ov, nv, 100*reg, status)
		}
		if ns, ok := n["ns/op"]; ok {
			if os_, ok2 := o["ns/op"]; ok2 {
				fmt.Printf("%-36s %-12s old=%-14.4g new=%-14.4g %+6.1f%%  (info)\n",
					name, "ns/op", os_, ns, 100*(ns/os_-1))
			}
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchgate: regression beyond %.0f%% threshold\n", 100**threshold)
		os.Exit(1)
	}
	fmt.Println("benchgate: no regressions")
}

package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	line := "BenchmarkILP_DCTPartitioning \t       1\t 562724284 ns/op\t        37.00 B&B-nodes\t 300001330 latency-ns\t        65.77 nodes/sec\t 2844856 B/op\t    2227 allocs/op\n"
	r := parseBenchOutput(line)
	for unit, want := range map[string]float64{
		"ns/op": 562724284, "B&B-nodes": 37, "nodes/sec": 65.77,
		"B/op": 2844856, "allocs/op": 2227, "latency-ns": 300001330,
	} {
		if got := r[unit]; got != want {
			t.Errorf("%s = %g, want %g", unit, got, want)
		}
	}
}

// writeFixture emits a minimal `go test -json` stream with one benchmark,
// split across two output events like the real runner does.
func writeFixture(t *testing.T, dir, name, head, tail string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data := `{"Action":"run","Test":"BenchmarkX"}
{"Action":"output","Test":"BenchmarkX","Output":"` + head + `"}
{"Action":"output","Test":"BenchmarkX","Output":"` + tail + `"}
{"Action":"pass","Test":"BenchmarkX"}
`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchFileJoinsSplitOutput(t *testing.T) {
	dir := t.TempDir()
	path := writeFixture(t, dir, "a.json",
		`BenchmarkX \t`, `       1\t 1000 ns/op\t 50.0 nodes/sec\t 120 allocs/op\n`)
	res, err := parseBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := res["BenchmarkX"]
	if !ok {
		t.Fatalf("BenchmarkX missing: %v", res)
	}
	if r["ns/op"] != 1000 || r["nodes/sec"] != 50 || r["allocs/op"] != 120 {
		t.Errorf("parsed %v", r)
	}
}

func TestFIRNodeCountOverride(t *testing.T) {
	nodes := gate{"B&B-nodes", true}
	// Default benchmarks tolerate the 20% threshold...
	if _, bad := gateMetric("BenchmarkOther", nodes, 100, 110, 0.20); bad {
		t.Error("10% node growth tripped the default gate")
	}
	// ...but the FIR bank headline gates at zero: any node growth fails.
	if _, bad := gateMetric("BenchmarkILP_FIRBank", nodes, 1, 2, 0.20); !bad {
		t.Error("FIR node-count growth passed despite the zero-threshold override")
	}
	if _, bad := gateMetric("BenchmarkILP_FIRBank", nodes, 1, 1, 0.20); bad {
		t.Error("unchanged FIR node count tripped the gate")
	}
	// Other FIR metrics keep the default threshold.
	if _, bad := gateMetric("BenchmarkILP_FIRBank", gate{"pivots/op", true}, 100, 110, 0.20); bad {
		t.Error("FIR pivots inherited the zero threshold")
	}
}

// Command sparcsd is the SPARCS partitioning daemon: a long-running HTTP
// service that solves temporal partitioning requests with a bounded worker
// pool, memoizes solves by canonical graph structure, deduplicates
// identical in-flight requests, and exposes health and metrics endpoints.
//
// API (JSON over HTTP; see internal/service for payload schemas):
//
//	POST /v1/solve            synchronous solve
//	POST /v1/batch            many graphs in one call
//	POST /v1/jobs             submit an async job -> {"id": ...}
//	GET  /v1/jobs/{id}        poll state/progress/result
//	POST /v1/jobs/{id}/cancel cancel (aborts the B&B search mid-flight)
//	GET  /healthz             liveness + headline stats
//	GET  /metrics             Prometheus text exposition
//	GET  /debug/solves        flight recorder: last solves + slowest since boot
//
// Usage:
//
//	sparcsd -addr :8080 -workers 8 -cache 4096
//	curl -s localhost:8080/v1/solve -d @graph-request.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addrArg    = flag.String("addr", ":8080", "listen address")
		workersArg = flag.Int("workers", 4, "worker pool size (max concurrent solves)")
		queueArg   = flag.Int("queue", 256, "max queued jobs before 503")
		cacheArg   = flag.Int("cache", 1024, "memo cache capacity (entries)")
		drainArg   = flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
		maxBodyArg = flag.Int64("max-body", 8<<20, "max request body bytes")
		pprofArg   = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (profiling of live solves)")
		flightArg  = flag.Int("flight", 64, "flight recorder size (/debug/solves ring)")
		deadArg    = flag.Duration("default-deadline", 0, "solve deadline applied to requests without deadline_ms (0 = unbounded)")
		logFmtArg  = flag.String("log-format", "text", "request log format: text or json")
		logLvlArg  = flag.String("log-level", "info", "request log level: debug, info, warn, or error")
	)
	flag.Parse()

	logger, err := newLogger(*logFmtArg, *logLvlArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sparcsd:", err)
		os.Exit(2)
	}
	if err := run(*addrArg, *workersArg, *queueArg, *cacheArg, *flightArg,
		*maxBodyArg, *drainArg, *deadArg, *pprofArg, logger); err != nil {
		fmt.Fprintln(os.Stderr, "sparcsd:", err)
		os.Exit(1)
	}
}

// newLogger builds the structured request logger (one line per terminal
// solve, written to stderr so stdout stays for operational chatter).
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

func run(addr string, workers, queue, cache, flight int, maxBody int64,
	drain, defaultDeadline time.Duration, enablePprof bool, logger *slog.Logger) error {
	svc := service.New(service.Config{
		Workers:           workers,
		QueueCap:          queue,
		CacheSize:         cache,
		MaxBodyBytes:      maxBody,
		FlightSize:        flight,
		DefaultDeadlineMS: int(defaultDeadline / time.Millisecond),
		Logger:            logger,
	})
	handler := svc.Handler()
	if enablePprof {
		// Guarded behind the flag: profiling endpoints expose internals and
		// cost CPU, so production deployments opt in explicitly.
		root := http.NewServeMux()
		root.Handle("/", handler)
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = root
		fmt.Println("sparcsd: pprof enabled at /debug/pprof/")
	}
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("sparcsd: listening on %s (%d workers, %d-entry cache)\n", addr, workers, cache)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Printf("sparcsd: %v, draining (max %v)\n", s, drain)
	}

	// Graceful shutdown: stop accepting connections, let in-flight HTTP
	// requests finish within the drain budget, then cancel whatever is
	// still solving and wait for the worker pool.
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		svc.Shutdown()
		return err
	}
	svc.Shutdown()
	fmt.Println("sparcsd: bye")
	return nil
}
